//! Lowering pass: sema-checked AST → flat register bytecode.
//!
//! Runs once per [`crate::Program::build`]; launches only execute the cached
//! [`CompiledUnit`].  The lowering mirrors the tree-walking interpreter's
//! semantics instruction by instruction (literal typing, C-style conversion
//! on declaration/assignment, place resolution order, short-circuit logical
//! operators) so the two paths stay differentially testable.
//!
//! This module also hosts [`analyze_kernel`], the syntactic barrier /
//! `__local`-write analysis.  The VM uses it to pick an execution strategy;
//! the legacy tree-walker uses it to *reject* kernels it would silently
//! miscompile (work-items synchronising through local memory).

use crate::ast::*;
use crate::builtins::{self, BuiltinKind};
use crate::bytecode::*;
use crate::error::{CompileError, Location};
use crate::interp::{component_index, default_value, swizzle_indices};
use crate::types::{AddressSpace, Type};
use crate::value::{Scalar, Value};
use std::collections::{HashMap, HashSet};

/// What a kernel does with barriers and `__local` memory (conservative,
/// purely syntactic, transitive through helper calls).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BarrierUse {
    /// Reaches a `barrier()` call.
    pub has_barrier: bool,
    /// May store through a `__local` pointer (over-approximated: passing a
    /// local pointer to a helper counts as a potential write).
    pub writes_local: bool,
    /// Observes the work-group shape (`get_local_id`, `get_local_size`,
    /// `get_group_id`, `get_num_groups`).
    pub observes_group_shape: bool,
}

/// Per-function facts gathered in one AST pass, before transitive closure.
#[derive(Debug, Default)]
struct DirectUse {
    barrier: bool,
    writes_local: bool,
    observes: bool,
    callees: Vec<usize>,
}

fn collect_idents(expr: &Expr, out: &mut Vec<String>) {
    match &expr.kind {
        ExprKind::Ident(name) => out.push(name.clone()),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_idents(lhs, out);
            collect_idents(rhs, out);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => collect_idents(expr, out),
        ExprKind::Assign { target, value, .. } => {
            collect_idents(target, out);
            collect_idents(value, out);
        }
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            collect_idents(cond, out);
            collect_idents(then_expr, out);
            collect_idents(else_expr, out);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|a| collect_idents(a, out)),
        ExprKind::Index { base, index } => {
            collect_idents(base, out);
            collect_idents(index, out);
        }
        ExprKind::Member { base, .. } => collect_idents(base, out),
        ExprKind::PostIncDec { target, .. } | ExprKind::PreIncDec { target, .. } => {
            collect_idents(target, out)
        }
        ExprKind::IntLit(..) | ExprKind::FloatLit(..) | ExprKind::BoolLit(..) => {}
    }
}

fn is_local_ptr(ty: &Type) -> bool {
    matches!(ty, Type::Pointer { space: AddressSpace::Local, .. })
}

/// Gather direct facts about one function.  `local_names` tracks names that
/// (may) alias `__local` memory: local-pointer params, local-pointer
/// declarations, and pointer declarations initialised from such a name.
fn direct_use(unit: &TranslationUnit, function: &Function) -> DirectUse {
    let mut d = DirectUse::default();
    let mut local_names: HashSet<String> =
        function.params.iter().filter(|p| is_local_ptr(&p.ty)).map(|p| p.name.clone()).collect();

    fn mentions_local(expr: &Expr, local_names: &HashSet<String>) -> bool {
        let mut idents = Vec::new();
        collect_idents(expr, &mut idents);
        idents.iter().any(|n| local_names.contains(n))
    }

    fn visit_expr(
        expr: &Expr,
        unit: &TranslationUnit,
        local_names: &HashSet<String>,
        d: &mut DirectUse,
    ) {
        match &expr.kind {
            ExprKind::Assign { target, value, .. } => {
                if let ExprKind::Index { base, .. } | ExprKind::Unary { expr: base, .. } =
                    &target.kind
                {
                    if mentions_local(base, local_names) {
                        d.writes_local = true;
                    }
                }
                visit_expr(target, unit, local_names, d);
                visit_expr(value, unit, local_names, d);
            }
            ExprKind::PostIncDec { target, .. } | ExprKind::PreIncDec { target, .. } => {
                if let ExprKind::Index { base, .. } | ExprKind::Unary { expr: base, .. } =
                    &target.kind
                {
                    if mentions_local(base, local_names) {
                        d.writes_local = true;
                    }
                }
                visit_expr(target, unit, local_names, d);
            }
            ExprKind::Call { name, args } => {
                if let Some((idx, f)) = unit.function_by_name(name) {
                    if !f.is_kernel {
                        d.callees.push(idx.0);
                        // A helper receiving a local pointer may write it.
                        if args.iter().any(|a| mentions_local(a, local_names)) {
                            d.writes_local = true;
                        }
                    }
                } else {
                    match name.as_str() {
                        "barrier" => d.barrier = true,
                        "get_local_id" | "get_local_size" | "get_group_id" | "get_num_groups" => {
                            d.observes = true
                        }
                        _ if matches!(builtins::classify(name), Some(BuiltinKind::Atomic)) => {
                            if let Some(ptr) = args.first() {
                                if mentions_local(ptr, local_names) {
                                    d.writes_local = true;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                args.iter().for_each(|a| visit_expr(a, unit, local_names, d));
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                visit_expr(lhs, unit, local_names, d);
                visit_expr(rhs, unit, local_names, d);
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => {
                visit_expr(expr, unit, local_names, d)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                visit_expr(cond, unit, local_names, d);
                visit_expr(then_expr, unit, local_names, d);
                visit_expr(else_expr, unit, local_names, d);
            }
            ExprKind::Index { base, index } => {
                visit_expr(base, unit, local_names, d);
                visit_expr(index, unit, local_names, d);
            }
            ExprKind::Member { base, .. } => visit_expr(base, unit, local_names, d),
            ExprKind::IntLit(..)
            | ExprKind::FloatLit(..)
            | ExprKind::BoolLit(..)
            | ExprKind::Ident(..) => {}
        }
    }

    fn visit_block(
        block: &Block,
        unit: &TranslationUnit,
        local_names: &mut HashSet<String>,
        d: &mut DirectUse,
    ) {
        for stmt in &block.statements {
            visit_stmt(stmt, unit, local_names, d);
        }
    }

    fn visit_stmt(
        stmt: &Stmt,
        unit: &TranslationUnit,
        local_names: &mut HashSet<String>,
        d: &mut DirectUse,
    ) {
        match stmt {
            Stmt::Decl { name, ty, init, .. } => {
                if let Some(e) = init {
                    visit_expr(e, unit, local_names, d);
                    // `__local int* p = scratch;` style aliasing.
                    if ty.is_pointer() {
                        let mut idents = Vec::new();
                        collect_idents(e, &mut idents);
                        if is_local_ptr(ty) || idents.iter().any(|n| local_names.contains(n)) {
                            local_names.insert(name.clone());
                        }
                    }
                } else if is_local_ptr(ty) {
                    local_names.insert(name.clone());
                }
            }
            Stmt::Expr(e) | Stmt::Return(Some(e)) => visit_expr(e, unit, local_names, d),
            Stmt::If { cond, then_block, else_block } => {
                visit_expr(cond, unit, local_names, d);
                visit_block(then_block, unit, local_names, d);
                if let Some(b) = else_block {
                    visit_block(b, unit, local_names, d);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                visit_expr(cond, unit, local_names, d);
                visit_block(body, unit, local_names, d);
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(s) = init {
                    visit_stmt(s, unit, local_names, d);
                }
                if let Some(c) = cond {
                    visit_expr(c, unit, local_names, d);
                }
                if let Some(s) = step {
                    visit_expr(s, unit, local_names, d);
                }
                visit_block(body, unit, local_names, d);
            }
            Stmt::Block(b) => visit_block(b, unit, local_names, d),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }

    visit_block(&function.body, unit, &mut local_names, &mut d);
    d
}

/// Analyse what the kernel at `index` does with barriers, `__local` memory
/// and group-shape queries, transitively through helper calls.
pub(crate) fn analyze_kernel(unit: &TranslationUnit, index: FunctionIndex) -> BarrierUse {
    let directs: Vec<DirectUse> = unit.functions.iter().map(|f| direct_use(unit, f)).collect();
    let mut use_ = BarrierUse::default();
    let mut seen = HashSet::new();
    let mut stack = vec![index.0];
    while let Some(i) = stack.pop() {
        if !seen.insert(i) {
            continue;
        }
        let Some(d) = directs.get(i) else { continue };
        use_.has_barrier |= d.barrier;
        use_.writes_local |= d.writes_local;
        use_.observes_group_shape |= d.observes;
        stack.extend(d.callees.iter().copied());
    }
    use_
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Lower every function of a sema-checked translation unit.
pub(crate) fn lower_unit(unit: &TranslationUnit) -> Result<CompiledUnit, CompileError> {
    // Helper functions first; CallUser refers to their compiled index.
    let mut helper_index: HashMap<usize, usize> = HashMap::new();
    for (i, f) in unit.functions.iter().enumerate() {
        if !f.is_kernel {
            let next = helper_index.len();
            helper_index.insert(i, next);
        }
    }

    let mut compiled = CompiledUnit::default();
    for f in unit.functions.iter().filter(|f| !f.is_kernel) {
        compiled.functions.push(lower_function(unit, &helper_index, f)?);
    }
    for (i, f) in unit.functions.iter().enumerate() {
        if f.is_kernel {
            let func = lower_function(unit, &helper_index, f)?;
            let use_ = analyze_kernel(unit, FunctionIndex(i));
            compiled.kernels.insert(
                i,
                CompiledKernel {
                    func,
                    has_barrier: use_.has_barrier,
                    observes_group_shape: use_.observes_group_shape,
                },
            );
        }
    }
    Ok(compiled)
}

/// The lowered location of an assignable expression.
enum Place {
    /// A named variable: its register and declared type (conversions on
    /// write preserve the declared type, like the interpreter does).
    Var(Reg, Type),
    /// A lane of a named vector variable.
    VarLane(Reg, usize),
    /// Memory through a pointer register, optionally indexed.
    Mem { ptr: Reg, index: Option<Reg> },
}

struct Lowerer<'a> {
    unit: &'a TranslationUnit,
    helper_index: &'a HashMap<usize, usize>,
    insts: Vec<Inst>,
    locs: Vec<Location>,
    scopes: Vec<Vec<(String, Reg, Type)>>,
    next_reg: Reg,
    /// Break / continue jump indices per enclosing loop, patched at loop end.
    loops: Vec<(Vec<usize>, Vec<usize>)>,
}

fn lower_function(
    unit: &TranslationUnit,
    helper_index: &HashMap<usize, usize>,
    function: &Function,
) -> Result<CompiledFunction, CompileError> {
    let mut l = Lowerer {
        unit,
        helper_index,
        insts: Vec::new(),
        locs: Vec::new(),
        scopes: vec![Vec::new()],
        next_reg: 0,
        loops: Vec::new(),
    };
    // Parameters occupy registers 0..N; the VM binds converted argument
    // values into them before the first instruction runs.
    for p in &function.params {
        let reg = l.alloc();
        l.scopes[0].push((p.name.clone(), reg, p.ty.clone()));
    }
    l.lower_block(&function.body)?;
    // Implicit return; the VM reports "ended without returning a value" for
    // non-void functions that fall off the end.
    l.emit(Inst::Return { src: None }, function.location);
    // Decode into the VM's fixed-size execution format once, here, so
    // launches never pay for it.  The verifier proves the bounds invariants
    // the VM's unchecked hot path relies on; a failure here is a lowering
    // bug, surfaced at build time instead of as undefined behaviour.
    let quick = quicken(&l.insts);
    crate::bytecode::verify(&quick, l.next_reg as usize).map_err(|msg| {
        CompileError::at(
            function.location,
            format!("internal error: bytecode verification failed for '{}': {msg}", function.name),
        )
    })?;
    Ok(CompiledFunction {
        name: function.name.clone(),
        quick,
        locs: l.locs,
        num_regs: l.next_reg as usize,
        param_types: function.params.iter().map(|p| p.ty.clone()).collect(),
        param_names: function.params.iter().map(|p| p.name.clone()).collect(),
        return_type: function.return_type.clone(),
    })
}

impl<'a> Lowerer<'a> {
    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, inst: Inst, loc: Location) -> usize {
        self.insts.push(inst);
        self.locs.push(loc);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.insts[at] {
            Inst::Jump { target: t }
            | Inst::JumpIfFalse { target: t, .. }
            | Inst::JumpIfTrue { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn lookup(&self, name: &str) -> Option<(Reg, Type)> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, ..)| n == name))
            .map(|(_, r, t)| (*r, t.clone()))
    }

    fn bind(&mut self, name: &str, reg: Reg, ty: Type) {
        self.scopes.last_mut().unwrap().push((name.to_string(), reg, ty));
    }

    // ----- statements ------------------------------------------------------

    fn lower_block(&mut self, block: &Block) -> Result<(), CompileError> {
        self.scopes.push(Vec::new());
        for stmt in &block.statements {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl { name, ty, init, location } => {
                let dst = self.alloc();
                match init {
                    Some(e) => {
                        let src = self.lower_expr(e)?;
                        self.emit(Inst::Convert { dst, src, ty: ty.clone() }, *location);
                    }
                    None => {
                        let value = default_value(ty).map_err(|mut e| {
                            e.location = *location;
                            e
                        })?;
                        self.emit(Inst::Const { dst, value }, *location);
                    }
                }
                self.bind(name, dst, ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then_block, else_block } => {
                let jfs = self.lower_cond_jump(cond, true)?;
                self.lower_block(then_block)?;
                match else_block {
                    Some(b) => {
                        let jend = self.emit(Inst::Jump { target: 0 }, cond.location);
                        let else_start = self.here();
                        for jf in jfs {
                            self.patch(jf, else_start);
                        }
                        self.lower_block(b)?;
                        let end = self.here();
                        self.patch(jend, end);
                    }
                    None => {
                        let end = self.here();
                        for jf in jfs {
                            self.patch(jf, end);
                        }
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                let jfs = self.lower_cond_jump(cond, true)?;
                self.loops.push((Vec::new(), Vec::new()));
                self.lower_block(body)?;
                self.emit(Inst::Jump { target: start }, cond.location);
                let end = self.here();
                for jf in jfs {
                    self.patch(jf, end);
                }
                let (breaks, continues) = self.loops.pop().unwrap();
                for b in breaks {
                    self.patch(b, end);
                }
                for c in continues {
                    self.patch(c, start);
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let start = self.here();
                self.loops.push((Vec::new(), Vec::new()));
                self.lower_block(body)?;
                let cond_label = self.here();
                let jts = self.lower_cond_jump(cond, false)?;
                for jt in jts {
                    self.patch(jt, start);
                }
                let end = self.here();
                let (breaks, continues) = self.loops.pop().unwrap();
                for b in breaks {
                    self.patch(b, end);
                }
                for c in continues {
                    self.patch(c, cond_label);
                }
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(Vec::new());
                if let Some(s) = init {
                    self.lower_stmt(s)?;
                }
                let cond_label = self.here();
                let jfs = match cond {
                    Some(c) => self.lower_cond_jump(c, true)?,
                    None => Vec::new(),
                };
                self.loops.push((Vec::new(), Vec::new()));
                self.lower_block(body)?;
                let step_label = self.here();
                if let Some(s) = step {
                    self.lower_expr(s)?;
                }
                self.emit(Inst::Jump { target: cond_label }, Location::default());
                let end = self.here();
                for jf in jfs {
                    self.patch(jf, end);
                }
                let (breaks, continues) = self.loops.pop().unwrap();
                for b in breaks {
                    self.patch(b, end);
                }
                for c in continues {
                    self.patch(c, step_label);
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e) => {
                let src = match e {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.emit(Inst::Return { src }, Location::default());
                Ok(())
            }
            Stmt::Break => {
                let j = self.emit(Inst::Jump { target: 0 }, Location::default());
                match self.loops.last_mut() {
                    Some((breaks, _)) => breaks.push(j),
                    None => return Err(CompileError::new("'break' outside of a loop")),
                }
                Ok(())
            }
            Stmt::Continue => {
                let j = self.emit(Inst::Jump { target: 0 }, Location::default());
                match self.loops.last_mut() {
                    Some((_, continues)) => continues.push(j),
                    None => return Err(CompileError::new("'continue' outside of a loop")),
                }
                Ok(())
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    // ----- places ----------------------------------------------------------

    fn lower_place(&mut self, expr: &Expr) -> Result<Place, CompileError> {
        match &expr.kind {
            ExprKind::Ident(name) => {
                let (reg, ty) = self.lookup(name).ok_or_else(|| {
                    CompileError::at(
                        expr.location,
                        format!("assignment to undeclared variable '{name}'"),
                    )
                })?;
                Ok(Place::Var(reg, ty))
            }
            ExprKind::Member { base, member } => {
                if let ExprKind::Ident(name) = &base.kind {
                    let lane = component_index(member).ok_or_else(|| {
                        CompileError::at(
                            expr.location,
                            format!("unknown vector component '{member}'"),
                        )
                    })?;
                    let (reg, _) = self.lookup(name).ok_or_else(|| {
                        CompileError::at(
                            expr.location,
                            format!("assignment to undeclared vector '{name}'"),
                        )
                    })?;
                    Ok(Place::VarLane(reg, lane))
                } else {
                    Err(CompileError::at(
                        expr.location,
                        "vector component assignment requires a named variable",
                    ))
                }
            }
            ExprKind::Index { base, index } => {
                let ptr = self.lower_expr(base)?;
                let idx = self.lower_expr(index)?;
                Ok(Place::Mem { ptr, index: Some(idx) })
            }
            ExprKind::Unary { op: UnOp::Deref, expr: inner } => {
                let ptr = self.lower_expr(inner)?;
                Ok(Place::Mem { ptr, index: None })
            }
            _ => Err(CompileError::at(expr.location, "expression is not assignable")),
        }
    }

    /// Read a place's current value.  `Var` reads alias the variable's
    /// register (no copy); callers needing a stable snapshot use
    /// [`Self::read_place_fresh`].
    fn read_place(&mut self, place: &Place, loc: Location) -> Reg {
        match place {
            Place::Var(reg, _) => *reg,
            Place::VarLane(reg, lane) => {
                let dst = self.alloc();
                self.emit(Inst::Swizzle { dst, src: *reg, lanes: vec![*lane] }, loc);
                dst
            }
            Place::Mem { ptr, index } => {
                let dst = self.alloc();
                self.emit(Inst::Load { dst, ptr: *ptr, index: *index }, loc);
                dst
            }
        }
    }

    /// Read a place into a fresh register (survives a later write).
    fn read_place_fresh(&mut self, place: &Place, loc: Location) -> Reg {
        match place {
            Place::Var(reg, _) => {
                let dst = self.alloc();
                self.emit(Inst::Move { dst, src: *reg }, loc);
                dst
            }
            _ => self.read_place(place, loc),
        }
    }

    fn write_place(&mut self, place: &Place, src: Reg, loc: Location) {
        match place {
            // Writes preserve the declared variable type (the interpreter
            // converts on assignment); pointer variables assign unchanged.
            Place::Var(reg, ty) => {
                if ty.is_pointer() {
                    self.emit(Inst::Move { dst: *reg, src }, loc);
                } else {
                    self.emit(Inst::Convert { dst: *reg, src, ty: ty.clone() }, loc);
                }
            }
            Place::VarLane(reg, lane) => {
                self.emit(Inst::SetLane { dst: *reg, lane: *lane, src }, loc);
            }
            Place::Mem { ptr, index } => {
                self.emit(Inst::Store { ptr: *ptr, index: *index, src }, loc);
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    /// Lower a branch condition directly to conditional jumps, short-
    /// circuiting `&&`/`||` as control flow instead of materialising a 0/1
    /// register (which costs a `Bool`, a `Const` and an extra jump per
    /// operator on the hot path of every loop).  Returns the unpatched jump
    /// sites; they all branch when the condition is false (`jump_if_false`)
    /// or true (otherwise) and fall through in the other case.
    fn lower_cond_jump(
        &mut self,
        e: &Expr,
        jump_if_false: bool,
    ) -> Result<Vec<usize>, CompileError> {
        match &e.kind {
            ExprKind::Binary { op: BinOp::LogicalAnd, lhs, rhs } if jump_if_false => {
                // `A && B` is false if either side is.
                let mut sites = self.lower_cond_jump(lhs, true)?;
                sites.extend(self.lower_cond_jump(rhs, true)?);
                Ok(sites)
            }
            ExprKind::Binary { op: BinOp::LogicalOr, lhs, rhs } if !jump_if_false => {
                // `A || B` is true if either side is.
                let mut sites = self.lower_cond_jump(lhs, false)?;
                sites.extend(self.lower_cond_jump(rhs, false)?);
                Ok(sites)
            }
            ExprKind::Binary { op: BinOp::LogicalAnd, lhs, rhs } => {
                // Jump when `A && B` is true: a false `A` skips past `B`.
                let skips = self.lower_cond_jump(lhs, true)?;
                let sites = self.lower_cond_jump(rhs, false)?;
                let fall = self.here();
                for s in skips {
                    self.patch(s, fall);
                }
                Ok(sites)
            }
            ExprKind::Binary { op: BinOp::LogicalOr, lhs, rhs } => {
                // Jump when `A || B` is false: a true `A` skips past `B`.
                let skips = self.lower_cond_jump(lhs, false)?;
                let sites = self.lower_cond_jump(rhs, true)?;
                let fall = self.here();
                for s in skips {
                    self.patch(s, fall);
                }
                Ok(sites)
            }
            _ => {
                let c = self.lower_expr(e)?;
                let site = if jump_if_false {
                    self.emit(Inst::JumpIfFalse { cond: c, target: 0 }, e.location)
                } else {
                    self.emit(Inst::JumpIfTrue { cond: c, target: 0 }, e.location)
                };
                Ok(vec![site])
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Reg, CompileError> {
        let loc = expr.location;
        match &expr.kind {
            ExprKind::IntLit(v, unsigned) => {
                // Literal typing matches the interpreter exactly.
                let value = if *unsigned {
                    Value::uint(*v)
                } else if *v <= i32::MAX as u64 {
                    Value::int(*v as i64)
                } else {
                    Value::long(*v as i64)
                };
                let dst = self.alloc();
                self.emit(Inst::Const { dst, value }, loc);
                Ok(dst)
            }
            ExprKind::FloatLit(v) => {
                let dst = self.alloc();
                self.emit(
                    Inst::Const {
                        dst,
                        value: Value::Scalar(crate::types::ScalarType::Float, Scalar::F(*v)),
                    },
                    loc,
                );
                Ok(dst)
            }
            ExprKind::BoolLit(v) => {
                let dst = self.alloc();
                self.emit(Inst::Const { dst, value: Value::boolean(*v) }, loc);
                Ok(dst)
            }
            ExprKind::Ident(name) => {
                if let Some((reg, _)) = self.lookup(name) {
                    Ok(reg)
                } else if let Some(value) = builtins::builtin_constant(name) {
                    let dst = self.alloc();
                    self.emit(Inst::Const { dst, value }, loc);
                    Ok(dst)
                } else {
                    Err(CompileError::at(loc, format!("use of undeclared identifier '{name}'")))
                }
            }
            ExprKind::Binary { op: BinOp::LogicalAnd, lhs, rhs } => {
                let dst = self.alloc();
                let l = self.lower_expr(lhs)?;
                let jf = self.emit(Inst::JumpIfFalse { cond: l, target: 0 }, loc);
                let r = self.lower_expr(rhs)?;
                self.emit(Inst::Bool { dst, src: r }, loc);
                let jend = self.emit(Inst::Jump { target: 0 }, loc);
                let short = self.here();
                self.patch(jf, short);
                self.emit(Inst::Const { dst, value: Value::int(0) }, loc);
                let end = self.here();
                self.patch(jend, end);
                Ok(dst)
            }
            ExprKind::Binary { op: BinOp::LogicalOr, lhs, rhs } => {
                let dst = self.alloc();
                let l = self.lower_expr(lhs)?;
                let jt = self.emit(Inst::JumpIfTrue { cond: l, target: 0 }, loc);
                let r = self.lower_expr(rhs)?;
                self.emit(Inst::Bool { dst, src: r }, loc);
                let jend = self.emit(Inst::Jump { target: 0 }, loc);
                let short = self.here();
                self.patch(jt, short);
                self.emit(Inst::Const { dst, value: Value::int(1) }, loc);
                let end = self.here();
                self.patch(jend, end);
                Ok(dst)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let dst = self.alloc();
                self.emit(Inst::Binary { op: *op, dst, lhs: l, rhs: r }, loc);
                Ok(dst)
            }
            ExprKind::Unary { op: UnOp::Deref, .. } => {
                let place = self.lower_place(expr)?;
                Ok(self.read_place(&place, loc))
            }
            ExprKind::Unary { op, expr: inner } => {
                let src = self.lower_expr(inner)?;
                let dst = self.alloc();
                self.emit(Inst::Unary { op: *op, dst, src }, loc);
                Ok(dst)
            }
            ExprKind::Assign { op, target, value } => {
                // Place operands evaluate before the right-hand side, exactly
                // like the interpreter's resolve-then-eval order.
                let place = self.lower_place(target)?;
                let rhs = self.lower_expr(value)?;
                let result = match op {
                    None => rhs,
                    Some(op) => {
                        let current = self.read_place(&place, loc);
                        let dst = self.alloc();
                        self.emit(Inst::Binary { op: *op, dst, lhs: current, rhs }, loc);
                        dst
                    }
                };
                self.write_place(&place, result, loc);
                Ok(result)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                let dst = self.alloc();
                let c = self.lower_expr(cond)?;
                let jf = self.emit(Inst::JumpIfFalse { cond: c, target: 0 }, loc);
                let t = self.lower_expr(then_expr)?;
                self.emit(Inst::Move { dst, src: t }, loc);
                let jend = self.emit(Inst::Jump { target: 0 }, loc);
                let else_start = self.here();
                self.patch(jf, else_start);
                let e = self.lower_expr(else_expr)?;
                self.emit(Inst::Move { dst, src: e }, loc);
                let end = self.here();
                self.patch(jend, end);
                Ok(dst)
            }
            ExprKind::Call { name, args } => self.lower_call(expr, name, args),
            ExprKind::Index { .. } => {
                let place = self.lower_place(expr)?;
                Ok(self.read_place(&place, loc))
            }
            ExprKind::Member { base, member } => {
                let src = self.lower_expr(base)?;
                let lanes = swizzle_indices(member).ok_or_else(|| {
                    CompileError::at(loc, format!("unknown vector component '{member}'"))
                })?;
                let dst = self.alloc();
                self.emit(Inst::Swizzle { dst, src, lanes }, loc);
                Ok(dst)
            }
            ExprKind::Cast { ty, expr: inner } => {
                let src = self.lower_expr(inner)?;
                let dst = self.alloc();
                self.emit(Inst::Convert { dst, src, ty: ty.clone() }, loc);
                Ok(dst)
            }
            ExprKind::PostIncDec { target, inc } => {
                let place = self.lower_place(target)?;
                let old = self.read_place_fresh(&place, loc);
                let one = self.alloc();
                self.emit(
                    Inst::Const { dst: one, value: Value::int(if *inc { 1 } else { -1 }) },
                    loc,
                );
                let new = self.alloc();
                self.emit(Inst::Binary { op: BinOp::Add, dst: new, lhs: old, rhs: one }, loc);
                self.write_place(&place, new, loc);
                Ok(old)
            }
            ExprKind::PreIncDec { target, inc } => {
                let place = self.lower_place(target)?;
                let old = self.read_place_fresh(&place, loc);
                let one = self.alloc();
                self.emit(
                    Inst::Const { dst: one, value: Value::int(if *inc { 1 } else { -1 }) },
                    loc,
                );
                let new = self.alloc();
                self.emit(Inst::Binary { op: BinOp::Add, dst: new, lhs: old, rhs: one }, loc);
                self.write_place(&place, new, loc);
                Ok(new)
            }
        }
    }

    fn lower_call(&mut self, expr: &Expr, name: &str, args: &[Expr]) -> Result<Reg, CompileError> {
        let loc = expr.location;
        // User-defined functions shadow builtins, like the interpreter.
        if let Some((idx, function)) = self.unit.function_by_name(name) {
            if function.is_kernel {
                return Err(CompileError::at(
                    loc,
                    format!("kernel '{name}' cannot be called from device code"),
                ));
            }
            let mut arg_regs = Vec::with_capacity(args.len());
            for a in args {
                arg_regs.push(self.lower_expr(a)?);
            }
            let dst = self.alloc();
            let func = self.helper_index[&idx.0];
            self.emit(Inst::CallUser { dst, func, args: arg_regs }, loc);
            return Ok(dst);
        }

        let kind = builtins::classify(name)
            .ok_or_else(|| CompileError::at(loc, format!("call to unknown function '{name}'")))?;
        match kind {
            BuiltinKind::WorkItem => {
                let dim = match args.first() {
                    Some(a) => Some(self.lower_expr(a)?),
                    None => None,
                };
                let which = match name {
                    "get_global_id" => WorkItemFn::GlobalId,
                    "get_local_id" => WorkItemFn::LocalId,
                    "get_group_id" => WorkItemFn::GroupId,
                    "get_global_size" => WorkItemFn::GlobalSize,
                    "get_local_size" => WorkItemFn::LocalSize,
                    "get_num_groups" => WorkItemFn::NumGroups,
                    "get_global_offset" => WorkItemFn::GlobalOffset,
                    "get_work_dim" => WorkItemFn::WorkDim,
                    _ => unreachable!("classified as work-item builtin"),
                };
                let dst = self.alloc();
                self.emit(Inst::WorkItem { dst, which, dim }, loc);
                Ok(dst)
            }
            BuiltinKind::Sync => {
                // Arguments evaluate for their side effects.
                for a in args {
                    self.lower_expr(a)?;
                }
                let dst = self.alloc();
                if name == "barrier" {
                    self.emit(Inst::Barrier, loc);
                }
                self.emit(Inst::Const { dst, value: Value::Void }, loc);
                Ok(dst)
            }
            BuiltinKind::Atomic => {
                let ptr_expr = args
                    .first()
                    .ok_or_else(|| CompileError::at(loc, format!("{name}: missing pointer")))?;
                let ptr = self.lower_expr(ptr_expr)?;
                let operand = match args.get(1) {
                    Some(a) => Some(self.lower_expr(a)?),
                    None => None,
                };
                let op = match name {
                    "atomic_add" | "atom_add" | "atomic_inc" | "atom_inc" => AtomicOp::Add,
                    "atomic_sub" | "atomic_dec" => AtomicOp::Sub,
                    "atomic_xchg" => AtomicOp::Xchg,
                    "atomic_min" => AtomicOp::Min,
                    "atomic_max" => AtomicOp::Max,
                    _ => unreachable!("classified as atomic builtin"),
                };
                let dst = self.alloc();
                self.emit(Inst::Atomic { op, dst, ptr, operand }, loc);
                Ok(dst)
            }
            BuiltinKind::VectorCtor => {
                let ty_name = name.trim_start_matches("__vec_");
                let ty = Type::from_name(ty_name).ok_or_else(|| {
                    CompileError::at(loc, format!("unknown vector type '{ty_name}'"))
                })?;
                let Type::Vector(scalar, width) = ty else {
                    return Err(CompileError::at(loc, "not a vector type"));
                };
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.lower_expr(a)?);
                }
                let dst = self.alloc();
                self.emit(Inst::VecCtor { dst, ty: scalar, width, args: arg_regs }, loc);
                Ok(dst)
            }
            BuiltinKind::Math => {
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.lower_expr(a)?);
                }
                let dst = self.alloc();
                self.emit(Inst::CallMath { dst, name: name.to_string(), args: arg_regs }, loc);
                Ok(dst)
            }
        }
    }
}
