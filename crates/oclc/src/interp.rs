//! Tree-walking interpreter executing kernels over an NDRange.
//!
//! This is the *legacy* executor, kept as the differential-testing oracle
//! for the bytecode VM (`crate::vm`) and reachable at runtime via the
//! `DCL_INTERP=tree` escape hatch.  It executes work-items sequentially, one
//! at a time, inside the calling thread.
//!
//! Because work-items run strictly one after another, work-group barriers
//! cannot be given their real semantics here: each `barrier()` call is a
//! no-op.  That is sound only for kernels that never communicate through
//! `__local` memory across a barrier, so [`execute_kernel`] *rejects*
//! kernels that combine `barrier()` with `__local`-memory writes (a clear
//! error instead of silently wrong results).  The VM executes such kernels
//! correctly by suspending and resuming the group's work-items in phases.

use crate::ast::*;
use crate::builtins::{self, BuiltinKind};
use crate::error::CompileError;
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{convert_scalar, load_scalar, store_scalar, Pointer, Scalar, Value};
use std::collections::HashMap;

/// Maximum user-function call depth (guards against runaway recursion).
const MAX_CALL_DEPTH: usize = 64;

/// Maximum number of interpreted statements per work-item (guards against
/// infinite loops taking the whole process down).
const MAX_STEPS_PER_ITEM: u64 = 2_000_000;

/// The index space a kernel is launched over (`clEnqueueNDRangeKernel`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdRange {
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [usize; 3],
    /// Optional work-group size per dimension.
    pub local: Option<[usize; 3]>,
    /// Global offset per dimension.
    pub offset: [usize; 3],
    /// Number of dimensions actually used (1–3).
    pub work_dim: u8,
}

impl NdRange {
    /// 1-dimensional range of `n` work-items.
    pub fn linear(n: usize) -> Self {
        NdRange { global: [n, 1, 1], local: None, offset: [0, 0, 0], work_dim: 1 }
    }

    /// 2-dimensional range.
    pub fn two_d(width: usize, height: usize) -> Self {
        NdRange { global: [width, height, 1], local: None, offset: [0, 0, 0], work_dim: 2 }
    }

    /// 3-dimensional range.
    pub fn three_d(x: usize, y: usize, z: usize) -> Self {
        NdRange { global: [x, y, z], local: None, offset: [0, 0, 0], work_dim: 3 }
    }

    /// Set the work-group size.
    pub fn with_local(mut self, local: [usize; 3]) -> Self {
        self.local = Some(local);
        self
    }

    /// Set the global offset.
    pub fn with_offset(mut self, offset: [usize; 3]) -> Self {
        self.offset = offset;
        self
    }

    /// Total number of work-items in the range.
    pub fn total_items(&self) -> usize {
        self.global[0].max(1) * self.global[1].max(1) * self.global[2].max(1)
    }

    /// The effective work-group size (defaults to the whole range in dim 0
    /// and 1 elsewhere when unspecified).
    pub fn local_size(&self) -> [usize; 3] {
        self.local.unwrap_or([self.global[0].max(1), 1, 1])
    }
}

/// A kernel argument value as set by `clSetKernelArg`.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelArgValue {
    /// A scalar (or vector) value passed by value.
    Scalar(Value),
    /// An index into the buffer bindings passed to
    /// [`crate::KernelHandle::execute`].
    Buffer(usize),
    /// `__local` memory of the given size in bytes (allocated per launch).
    Local(usize),
}

/// Mutable view of a buffer the kernel may read and write.
#[derive(Debug)]
pub struct BufferBinding<'a> {
    data: &'a mut [u8],
}

impl<'a> BufferBinding<'a> {
    /// Bind a byte slice as kernel-accessible memory.
    pub fn new(data: &'a mut [u8]) -> Self {
        BufferBinding { data }
    }

    /// Size of the bound buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shared access to the bound bytes (used by built-in native kernels).
    pub fn bytes(&self) -> &[u8] {
        self.data
    }

    /// Mutable access to the bound bytes (used by built-in native kernels).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.data
    }
}

/// Operation counters accumulated over a launch; the device model converts
/// these into modelled execution time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkItemCounters {
    /// Number of work-items executed.
    pub work_items: u64,
    /// Number of arithmetic/logic operations evaluated.
    pub ops: u64,
    /// Number of scalar loads from buffers.
    pub loads: u64,
    /// Number of scalar stores to buffers.
    pub stores: u64,
    /// Number of interpreted statements (a proxy for instruction count).
    pub steps: u64,
}

/// Identity of the currently executing work-item.
#[derive(Debug, Clone, Copy, Default)]
struct WorkItem {
    global_id: [usize; 3],
    global_size: [usize; 3],
    local_id: [usize; 3],
    local_size: [usize; 3],
    group_id: [usize; 3],
    num_groups: [usize; 3],
    offset: [usize; 3],
    work_dim: u8,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Where an assignment lands.
enum Place {
    Var(String),
    VarLane(String, usize),
    Mem { buffer: usize, offset: usize, ty: ScalarType },
}

struct Interp<'u, 'b, 'd> {
    unit: &'u TranslationUnit,
    bufs: &'b mut [BufferBinding<'d>],
    locals: Vec<Vec<u8>>,
    counters: WorkItemCounters,
    item: WorkItem,
    call_depth: usize,
    steps_this_item: u64,
}

/// Execute the kernel at `index` over `range`.
pub fn execute_kernel(
    unit: &TranslationUnit,
    index: FunctionIndex,
    range: &NdRange,
    args: &[KernelArgValue],
    buffers: &mut [BufferBinding<'_>],
) -> Result<WorkItemCounters, CompileError> {
    let function =
        unit.functions.get(index.0).ok_or_else(|| CompileError::new("invalid kernel index"))?;
    if !function.is_kernel {
        return Err(CompileError::new(format!("'{}' is not a kernel", function.name)));
    }
    if args.len() != function.params.len() {
        return Err(CompileError::new(format!(
            "kernel '{}' expects {} argument(s), got {}",
            function.name,
            function.params.len(),
            args.len()
        )));
    }

    // The serial tree walker treats barriers as no-ops, which silently
    // miscomputes kernels that synchronise `__local`-memory writes across a
    // barrier.  Reject those up front; the bytecode VM runs them correctly.
    let barrier_use = crate::compile::analyze_kernel(unit, index);
    if barrier_use.has_barrier && barrier_use.writes_local {
        return Err(CompileError::new(format!(
            "kernel '{}' uses barrier() together with __local memory writes, which the \
             tree-walking interpreter cannot execute correctly; use the bytecode VM \
             (unset DCL_INTERP)",
            function.name
        )));
    }

    let mut interp = Interp {
        unit,
        bufs: buffers,
        locals: Vec::new(),
        counters: WorkItemCounters::default(),
        item: WorkItem::default(),
        call_depth: 0,
        steps_this_item: 0,
    };

    // Bind arguments once; pointers are re-used for every work-item.
    let mut bound_args = Vec::with_capacity(args.len());
    for (param, arg) in function.params.iter().zip(args) {
        let value = interp.bind_argument(param, arg)?;
        bound_args.push((param.name.clone(), value));
    }

    let local = range.local_size();
    let num_groups = [
        range.global[0].max(1).div_ceil(local[0].max(1)),
        range.global[1].max(1).div_ceil(local[1].max(1)),
        range.global[2].max(1).div_ceil(local[2].max(1)),
    ];

    for z in 0..range.global[2].max(1) {
        for y in 0..range.global[1].max(1) {
            for x in 0..range.global[0].max(1) {
                interp.item = WorkItem {
                    global_id: [x + range.offset[0], y + range.offset[1], z + range.offset[2]],
                    global_size: [
                        range.global[0].max(1),
                        range.global[1].max(1),
                        range.global[2].max(1),
                    ],
                    local_id: [x % local[0].max(1), y % local[1].max(1), z % local[2].max(1)],
                    local_size: local,
                    group_id: [x / local[0].max(1), y / local[1].max(1), z / local[2].max(1)],
                    num_groups,
                    offset: range.offset,
                    work_dim: range.work_dim,
                };
                interp.steps_this_item = 0;
                let mut env = vec![HashMap::new()];
                for (name, value) in &bound_args {
                    env[0].insert(name.clone(), value.clone());
                }
                interp.exec_block(&function.body, &mut env)?;
                interp.counters.work_items += 1;
            }
        }
    }
    Ok(interp.counters)
}

impl<'u, 'b, 'd> Interp<'u, 'b, 'd> {
    fn bind_argument(
        &mut self,
        param: &Param,
        arg: &KernelArgValue,
    ) -> Result<Value, CompileError> {
        match (arg, &param.ty) {
            (KernelArgValue::Buffer(idx), Type::Pointer { pointee, space, .. }) => {
                if *idx >= self.bufs.len() {
                    return Err(CompileError::new(format!(
                        "argument '{}' references buffer binding {idx}, but only {} are bound",
                        param.name,
                        self.bufs.len()
                    )));
                }
                let pointee = pointee.element_scalar().ok_or_else(|| {
                    CompileError::new("only pointers to scalar element types are supported")
                })?;
                Ok(Value::Ptr(Pointer {
                    buffer: *idx as u32,
                    byte_offset: 0,
                    pointee,
                    space: *space,
                }))
            }
            (KernelArgValue::Local(bytes), Type::Pointer { pointee, .. }) => {
                let pointee = pointee.element_scalar().ok_or_else(|| {
                    CompileError::new("only pointers to scalar element types are supported")
                })?;
                self.locals.push(vec![0u8; *bytes]);
                Ok(Value::Ptr(Pointer {
                    buffer: (self.bufs.len() + self.locals.len() - 1) as u32,
                    byte_offset: 0,
                    pointee,
                    space: AddressSpace::Local,
                }))
            }
            (KernelArgValue::Scalar(v), ty) => v.convert_to(ty),
            (arg, ty) => Err(CompileError::new(format!(
                "argument '{}' of type {ty} cannot be bound from {arg:?}",
                param.name
            ))),
        }
    }

    fn mem_load(
        &mut self,
        buffer: usize,
        offset: usize,
        ty: ScalarType,
    ) -> Result<Scalar, CompileError> {
        self.counters.loads += 1;
        if buffer < self.bufs.len() {
            load_scalar(self.bufs[buffer].data, offset, ty)
        } else {
            load_scalar(&self.locals[buffer - self.bufs.len()], offset, ty)
        }
    }

    fn mem_store(
        &mut self,
        buffer: usize,
        offset: usize,
        ty: ScalarType,
        value: Scalar,
    ) -> Result<(), CompileError> {
        self.counters.stores += 1;
        if buffer < self.bufs.len() {
            store_scalar(self.bufs[buffer].data, offset, ty, value)
        } else {
            store_scalar(&mut self.locals[buffer - self.bufs.len()], offset, ty, value)
        }
    }

    fn step(&mut self) -> Result<(), CompileError> {
        self.counters.steps += 1;
        self.steps_this_item += 1;
        if self.steps_this_item > MAX_STEPS_PER_ITEM {
            return Err(CompileError::new(
                "work-item exceeded the interpreter step limit (possible infinite loop)",
            ));
        }
        Ok(())
    }

    // ----- statements -----------------------------------------------------

    fn exec_block(
        &mut self,
        block: &Block,
        env: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, CompileError> {
        env.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in &block.statements {
            flow = self.exec_stmt(stmt, env)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        env.pop();
        Ok(flow)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, CompileError> {
        self.step()?;
        match stmt {
            Stmt::Decl { name, ty, init, .. } => {
                let value = match init {
                    Some(e) => self.eval(e, env)?.convert_to(ty)?,
                    None => default_value(ty)?,
                };
                env.last_mut().unwrap().insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_block, else_block } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.exec_block(then_block, env)
                } else if let Some(b) = else_block {
                    self.exec_block(b, env)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, env)?.as_bool()? {
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.step()?;
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond, env)?.as_bool()? {
                        break;
                    }
                    self.step()?;
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body } => {
                env.push(HashMap::new());
                if let Some(s) = init {
                    self.exec_stmt(s, env)?;
                }
                let result = loop {
                    if let Some(c) = cond {
                        if !self.eval(c, env)?.as_bool()? {
                            break Flow::Normal;
                        }
                    }
                    match self.exec_block(body, env)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(s) = step {
                        self.eval(s, env)?;
                    }
                    self.step()?;
                };
                env.pop();
                Ok(result)
            }
            Stmt::Return(e) => {
                let value = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(value))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b, env),
        }
    }

    // ----- expressions -----------------------------------------------------

    fn lookup<'e>(env: &'e [HashMap<String, Value>], name: &str) -> Option<&'e Value> {
        env.iter().rev().find_map(|scope| scope.get(name))
    }

    fn assign_var(
        env: &mut [HashMap<String, Value>],
        name: &str,
        value: Value,
    ) -> Result<(), CompileError> {
        for scope in env.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                // Preserve the declared type of the variable.
                let converted = match slot {
                    Value::Scalar(t, _) => value.convert_to_scalar(*t)?,
                    Value::Vector(t, lanes) => {
                        value.convert_to(&Type::Vector(*t, lanes.len() as u8))?
                    }
                    Value::Ptr(_) | Value::Void => value,
                };
                *slot = converted;
                return Ok(());
            }
        }
        Err(CompileError::new(format!("assignment to undeclared variable '{name}'")))
    }

    fn resolve_place(
        &mut self,
        expr: &Expr,
        env: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Place, CompileError> {
        match &expr.kind {
            ExprKind::Ident(name) => Ok(Place::Var(name.clone())),
            ExprKind::Member { base, member } => {
                if let ExprKind::Ident(name) = &base.kind {
                    let lane = component_index(member).ok_or_else(|| {
                        CompileError::at(
                            expr.location,
                            format!("unknown vector component '{member}'"),
                        )
                    })?;
                    Ok(Place::VarLane(name.clone(), lane))
                } else {
                    Err(CompileError::at(
                        expr.location,
                        "vector component assignment requires a named variable",
                    ))
                }
            }
            ExprKind::Index { base, index } => {
                let base_val = self.eval(base, env)?;
                let idx = self.eval(index, env)?.as_i64()?;
                match base_val {
                    Value::Ptr(p) => {
                        let offset = p.byte_offset + idx * p.pointee.size() as i64;
                        if offset < 0 {
                            return Err(CompileError::at(expr.location, "negative pointer offset"));
                        }
                        Ok(Place::Mem {
                            buffer: p.buffer as usize,
                            offset: offset as usize,
                            ty: p.pointee,
                        })
                    }
                    other => Err(CompileError::at(
                        expr.location,
                        format!("cannot index a value of type {}", other.ty()),
                    )),
                }
            }
            ExprKind::Unary { op: UnOp::Deref, expr: inner } => {
                let v = self.eval(inner, env)?;
                match v {
                    Value::Ptr(p) => {
                        if p.byte_offset < 0 {
                            return Err(CompileError::at(expr.location, "negative pointer offset"));
                        }
                        Ok(Place::Mem {
                            buffer: p.buffer as usize,
                            offset: p.byte_offset as usize,
                            ty: p.pointee,
                        })
                    }
                    other => Err(CompileError::at(
                        expr.location,
                        format!("cannot dereference a value of type {}", other.ty()),
                    )),
                }
            }
            _ => Err(CompileError::at(expr.location, "expression is not assignable")),
        }
    }

    fn read_place(
        &mut self,
        place: &Place,
        env: &[HashMap<String, Value>],
    ) -> Result<Value, CompileError> {
        match place {
            Place::Var(name) => Self::lookup(env, name)
                .cloned()
                .ok_or_else(|| CompileError::new(format!("undeclared variable '{name}'"))),
            Place::VarLane(name, lane) => {
                let v = Self::lookup(env, name)
                    .cloned()
                    .ok_or_else(|| CompileError::new(format!("undeclared variable '{name}'")))?;
                match v {
                    Value::Vector(t, lanes) => lanes
                        .get(*lane)
                        .map(|s| Value::Scalar(t, *s))
                        .ok_or_else(|| CompileError::new("vector component out of range")),
                    other => Err(CompileError::new(format!(
                        "cannot access a component of type {}",
                        other.ty()
                    ))),
                }
            }
            Place::Mem { buffer, offset, ty } => {
                Ok(Value::Scalar(*ty, self.mem_load(*buffer, *offset, *ty)?))
            }
        }
    }

    fn write_place(
        &mut self,
        place: &Place,
        value: Value,
        env: &mut [HashMap<String, Value>],
    ) -> Result<(), CompileError> {
        match place {
            Place::Var(name) => Self::assign_var(env, name, value),
            Place::VarLane(name, lane) => {
                let scalar = value.scalar()?;
                for scope in env.iter_mut().rev() {
                    if let Some(Value::Vector(t, lanes)) = scope.get_mut(name) {
                        if *lane >= lanes.len() {
                            return Err(CompileError::new("vector component out of range"));
                        }
                        lanes[*lane] = convert_scalar(scalar, *t);
                        return Ok(());
                    }
                }
                Err(CompileError::new(format!("assignment to undeclared vector '{name}'")))
            }
            Place::Mem { buffer, offset, ty } => {
                self.mem_store(*buffer, *offset, *ty, value.scalar()?)
            }
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        env: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, CompileError> {
        match &expr.kind {
            ExprKind::IntLit(v, unsigned) => {
                if *unsigned {
                    Ok(Value::Scalar(ScalarType::UInt, Scalar::U(*v)))
                } else if *v <= i32::MAX as u64 {
                    Ok(Value::Scalar(ScalarType::Int, Scalar::I(*v as i64)))
                } else {
                    Ok(Value::Scalar(ScalarType::Long, Scalar::I(*v as i64)))
                }
            }
            ExprKind::FloatLit(v) => Ok(Value::Scalar(ScalarType::Float, Scalar::F(*v))),
            ExprKind::BoolLit(v) => Ok(Value::boolean(*v)),
            ExprKind::Ident(name) => {
                if let Some(v) = Self::lookup(env, name) {
                    Ok(v.clone())
                } else if let Some(v) = builtins::builtin_constant(name) {
                    Ok(v)
                } else {
                    Err(CompileError::at(
                        expr.location,
                        format!("use of undeclared identifier '{name}'"),
                    ))
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.counters.ops += 1;
                match op {
                    BinOp::LogicalAnd => {
                        let l = self.eval(lhs, env)?.as_bool()?;
                        if !l {
                            return Ok(Value::int(0));
                        }
                        Ok(Value::int(i64::from(self.eval(rhs, env)?.as_bool()?)))
                    }
                    BinOp::LogicalOr => {
                        let l = self.eval(lhs, env)?.as_bool()?;
                        if l {
                            return Ok(Value::int(1));
                        }
                        Ok(Value::int(i64::from(self.eval(rhs, env)?.as_bool()?)))
                    }
                    _ => {
                        let l = self.eval(lhs, env)?;
                        let r = self.eval(rhs, env)?;
                        eval_binary(*op, &l, &r)
                            .map_err(|e| CompileError::at(expr.location, e.message))
                    }
                }
            }
            ExprKind::Unary { op, expr: inner } => {
                self.counters.ops += 1;
                match op {
                    UnOp::Deref => {
                        let place = self.resolve_place(expr, env)?;
                        self.read_place(&place, env)
                    }
                    _ => {
                        let v = self.eval(inner, env)?;
                        eval_unary(*op, &v).map_err(|e| CompileError::at(expr.location, e.message))
                    }
                }
            }
            ExprKind::Assign { op, target, value } => {
                let place = self.resolve_place(target, env)?;
                let rhs = self.eval(value, env)?;
                let new_value = match op {
                    None => rhs,
                    Some(op) => {
                        let current = self.read_place(&place, env)?;
                        eval_binary(*op, &current, &rhs)
                            .map_err(|e| CompileError::at(expr.location, e.message))?
                    }
                };
                self.write_place(&place, new_value.clone(), env)?;
                Ok(new_value)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval(then_expr, env)
                } else {
                    self.eval(else_expr, env)
                }
            }
            ExprKind::Call { name, args } => self.eval_call(expr, name, args, env),
            ExprKind::Index { .. } => {
                let place = self.resolve_place(expr, env)?;
                self.read_place(&place, env)
            }
            ExprKind::Member { base, member } => {
                let v = self.eval(base, env)?;
                match v {
                    Value::Vector(t, lanes) => {
                        let indices = swizzle_indices(member).ok_or_else(|| {
                            CompileError::at(
                                expr.location,
                                format!("unknown vector component '{member}'"),
                            )
                        })?;
                        if indices.iter().any(|&i| i >= lanes.len()) {
                            return Err(CompileError::at(
                                expr.location,
                                "vector component out of range",
                            ));
                        }
                        if indices.len() == 1 {
                            Ok(Value::Scalar(t, lanes[indices[0]]))
                        } else {
                            Ok(Value::Vector(t, indices.iter().map(|&i| lanes[i]).collect()))
                        }
                    }
                    other => Err(CompileError::at(
                        expr.location,
                        format!("cannot access member '{member}' of type {}", other.ty()),
                    )),
                }
            }
            ExprKind::Cast { ty, expr: inner } => {
                let v = self.eval(inner, env)?;
                v.convert_to(ty).map_err(|e| CompileError::at(expr.location, e.message))
            }
            ExprKind::PostIncDec { target, inc } => {
                let place = self.resolve_place(target, env)?;
                let old = self.read_place(&place, env)?;
                let delta = Value::int(if *inc { 1 } else { -1 });
                let new = eval_binary(BinOp::Add, &old, &delta)
                    .map_err(|e| CompileError::at(expr.location, e.message))?;
                self.write_place(&place, new, env)?;
                Ok(old)
            }
            ExprKind::PreIncDec { target, inc } => {
                let place = self.resolve_place(target, env)?;
                let old = self.read_place(&place, env)?;
                let delta = Value::int(if *inc { 1 } else { -1 });
                let new = eval_binary(BinOp::Add, &old, &delta)
                    .map_err(|e| CompileError::at(expr.location, e.message))?;
                self.write_place(&place, new.clone(), env)?;
                Ok(new)
            }
        }
    }

    fn eval_call(
        &mut self,
        expr: &Expr,
        name: &str,
        args: &[Expr],
        env: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, CompileError> {
        // User-defined functions take precedence over built-ins of the same
        // name (matching OpenCL C shadowing behaviour is not needed here, but
        // this order keeps helper functions predictable).
        if let Some((idx, function)) = self.unit.function_by_name(name) {
            if function.is_kernel {
                return Err(CompileError::at(
                    expr.location,
                    format!("kernel '{name}' cannot be called from device code"),
                ));
            }
            if self.call_depth >= MAX_CALL_DEPTH {
                return Err(CompileError::at(expr.location, "maximum call depth exceeded"));
            }
            let function = &self.unit.functions[idx.0];
            let mut frame = HashMap::new();
            for (param, arg) in function.params.iter().zip(args) {
                let v = self.eval(arg, env)?.convert_to(&param.ty)?;
                frame.insert(param.name.clone(), v);
            }
            let mut callee_env = vec![frame];
            self.call_depth += 1;
            let flow = self.exec_block(&function.body, &mut callee_env)?;
            self.call_depth -= 1;
            return match flow {
                Flow::Return(v) => {
                    if function.return_type == Type::Void {
                        Ok(Value::Void)
                    } else {
                        v.convert_to(&function.return_type)
                    }
                }
                _ => {
                    if function.return_type == Type::Void {
                        Ok(Value::Void)
                    } else {
                        Err(CompileError::at(
                            expr.location,
                            format!("function '{name}' ended without returning a value"),
                        ))
                    }
                }
            };
        }

        let kind = builtins::classify(name).ok_or_else(|| {
            CompileError::at(expr.location, format!("call to unknown function '{name}'"))
        })?;
        match kind {
            BuiltinKind::WorkItem => {
                let dim = if args.is_empty() { 0 } else { self.eval(&args[0], env)?.as_usize()? };
                let d = dim.min(2);
                let v = match name {
                    "get_global_id" => self.item.global_id[d],
                    "get_local_id" => self.item.local_id[d],
                    "get_group_id" => self.item.group_id[d],
                    "get_global_size" => self.item.global_size[d],
                    "get_local_size" => self.item.local_size[d],
                    "get_num_groups" => self.item.num_groups[d],
                    "get_global_offset" => self.item.offset[d],
                    "get_work_dim" => self.item.work_dim as usize,
                    _ => unreachable!("classified as work-item builtin"),
                };
                Ok(Value::size_t(v as u64))
            }
            BuiltinKind::Sync => {
                // Evaluate arguments for their side effects, then ignore.
                for a in args {
                    self.eval(a, env)?;
                }
                Ok(Value::Void)
            }
            BuiltinKind::Atomic => {
                if args.is_empty() {
                    return Err(CompileError::at(
                        expr.location,
                        format!("{name}: missing pointer"),
                    ));
                }
                let place = self.resolve_place(&unary_deref(&args[0]), env)?;
                let old = self.read_place(&place, env)?;
                let operand =
                    if args.len() > 1 { self.eval(&args[1], env)? } else { Value::int(1) };
                let new = match name {
                    "atomic_add" | "atom_add" | "atomic_inc" | "atom_inc" => {
                        eval_binary(BinOp::Add, &old, &operand)?
                    }
                    "atomic_sub" | "atomic_dec" => eval_binary(BinOp::Sub, &old, &operand)?,
                    "atomic_xchg" => operand,
                    "atomic_min" => builtins::eval_math("min", &[old.clone(), operand])?,
                    "atomic_max" => builtins::eval_math("max", &[old.clone(), operand])?,
                    _ => unreachable!("classified as atomic builtin"),
                };
                self.write_place(&place, new, env)?;
                Ok(old)
            }
            BuiltinKind::VectorCtor => {
                let ty_name = name.trim_start_matches("__vec_");
                let ty = Type::from_name(ty_name).ok_or_else(|| {
                    CompileError::at(expr.location, format!("unknown vector type '{ty_name}'"))
                })?;
                let Type::Vector(scalar, width) = ty else {
                    return Err(CompileError::at(expr.location, "not a vector type"));
                };
                let mut lanes = Vec::new();
                for a in args {
                    match self.eval(a, env)? {
                        Value::Scalar(_, s) => lanes.push(convert_scalar(s, scalar)),
                        Value::Vector(_, more) => {
                            lanes.extend(more.iter().map(|s| convert_scalar(*s, scalar)))
                        }
                        other => {
                            return Err(CompileError::at(
                                expr.location,
                                format!("cannot build a vector from {}", other.ty()),
                            ))
                        }
                    }
                }
                if lanes.len() == 1 {
                    lanes = vec![lanes[0]; width as usize];
                }
                if lanes.len() != width as usize {
                    return Err(CompileError::at(
                        expr.location,
                        format!("vector literal has {} element(s), expected {width}", lanes.len()),
                    ));
                }
                Ok(Value::Vector(scalar, lanes))
            }
            BuiltinKind::Math => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, env)?);
                }
                self.counters.ops += 1;
                builtins::eval_math(name, &values)
                    .map_err(|e| CompileError::at(expr.location, e.message))
            }
        }
    }
}

/// Wrap an expression in a synthetic dereference so that `atomic_add(p, v)`
/// resolves `*p` as its place.
fn unary_deref(expr: &Expr) -> Expr {
    Expr::new(ExprKind::Unary { op: UnOp::Deref, expr: Box::new(expr.clone()) }, expr.location)
}

pub(crate) fn default_value(ty: &Type) -> Result<Value, CompileError> {
    Ok(match ty {
        Type::Scalar(t) => {
            if t.is_float() {
                Value::Scalar(*t, Scalar::F(0.0))
            } else if t.is_signed() {
                Value::Scalar(*t, Scalar::I(0))
            } else {
                Value::Scalar(*t, Scalar::U(0))
            }
        }
        Type::Vector(t, n) => Value::Vector(
            *t,
            vec![if t.is_float() { Scalar::F(0.0) } else { Scalar::I(0) }; *n as usize],
        ),
        Type::Pointer { .. } => {
            return Err(CompileError::new(
                "pointer variables must be initialised from a kernel argument",
            ))
        }
        Type::Void => Value::Void,
    })
}

pub(crate) fn component_index(name: &str) -> Option<usize> {
    let indices = swizzle_indices(name)?;
    if indices.len() == 1 {
        Some(indices[0])
    } else {
        None
    }
}

pub(crate) fn swizzle_indices(name: &str) -> Option<Vec<usize>> {
    if let Some(rest) = name.strip_prefix('s').or_else(|| name.strip_prefix('S')) {
        if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_hexdigit()) {
            return rest
                .chars()
                .map(|c| c.to_digit(16).map(|d| d as usize))
                .collect::<Option<Vec<_>>>();
        }
    }
    let mut out = Vec::with_capacity(name.len());
    for c in name.chars() {
        out.push(match c {
            'x' => 0,
            'y' => 1,
            'z' => 2,
            'w' => 3,
            _ => return None,
        });
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn integer_rank(t: ScalarType) -> u8 {
    match t {
        ScalarType::Bool => 0,
        ScalarType::Char | ScalarType::UChar => 1,
        ScalarType::Short | ScalarType::UShort => 2,
        ScalarType::Int | ScalarType::UInt => 3,
        ScalarType::Long | ScalarType::ULong | ScalarType::SizeT => 4,
        ScalarType::Float | ScalarType::Double => 5,
    }
}

fn promote(a: ScalarType, b: ScalarType) -> ScalarType {
    if a == ScalarType::Double || b == ScalarType::Double {
        return ScalarType::Double;
    }
    if a == ScalarType::Float || b == ScalarType::Float {
        return ScalarType::Float;
    }
    // Simplified C integer-promotion rules: the result takes the
    // higher-ranked operand's type, signedness included.
    let (hi, _lo) = if integer_rank(a) >= integer_rank(b) { (a, b) } else { (b, a) };
    hi
}

/// Pointer ± integer arithmetic, scaled by the pointee size.  Shared by the
/// tree walker and the VM's inline fast path so the two executors cannot
/// drift apart.
#[inline]
pub(crate) fn eval_binary_ptr(op: BinOp, p: &Pointer, s: Scalar) -> Result<Pointer, CompileError> {
    match op {
        BinOp::Add => {
            Ok(Pointer { byte_offset: p.byte_offset + s.as_i64() * p.pointee.size() as i64, ..*p })
        }
        BinOp::Sub => {
            Ok(Pointer { byte_offset: p.byte_offset - s.as_i64() * p.pointee.size() as i64, ..*p })
        }
        _ => Err(CompileError::new("unsupported pointer operation")),
    }
}

/// Scalar ∘ scalar core of [`eval_binary`]: promotion, the operation itself
/// and the result conversion.  Kept `#[inline]` because the VM calls it
/// straight from its instruction loop — this *is* the hot ALU.
#[inline]
pub(crate) fn eval_binary_scalars(
    op: BinOp,
    lt: ScalarType,
    ls: Scalar,
    rt: ScalarType,
    rs: Scalar,
) -> Result<(ScalarType, Scalar), CompileError> {
    let result_type = promote(lt, rt);

    // Comparisons produce int 0/1.
    let cmp = |ordering: std::cmp::Ordering, op: BinOp| -> bool {
        use std::cmp::Ordering::*;
        match op {
            BinOp::Eq => ordering == Equal,
            BinOp::Ne => ordering != Equal,
            BinOp::Lt => ordering == Less,
            BinOp::Le => ordering != Greater,
            BinOp::Gt => ordering == Greater,
            BinOp::Ge => ordering != Less,
            _ => unreachable!(),
        }
    };

    match op {
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ordering = if result_type.is_float() {
                ls.as_f64().partial_cmp(&rs.as_f64()).unwrap_or(std::cmp::Ordering::Greater)
            } else if result_type.is_signed() {
                ls.as_i64().cmp(&rs.as_i64())
            } else if lt.is_signed() && ls.as_i64() < 0 {
                // Signed negative compared against unsigned: keep the
                // mathematical ordering instead of C's wrapping surprise —
                // kernels in the wild rely on `i < n` with `int i`/`uint n`.
                std::cmp::Ordering::Less
            } else {
                ls.as_u64().cmp(&rs.as_u64())
            };
            Ok((ScalarType::Int, Scalar::I(i64::from(cmp(ordering, op)))))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            if result_type.is_float() {
                let a = ls.as_f64();
                let b = rs.as_f64();
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                };
                Ok((result_type, convert_scalar(Scalar::F(v), result_type)))
            } else if result_type.is_signed() {
                let a = ls.as_i64();
                let b = rs.as_i64();
                if matches!(op, BinOp::Div | BinOp::Rem) && b == 0 {
                    return Err(CompileError::new("integer division by zero"));
                }
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.wrapping_div(b),
                    BinOp::Rem => a.wrapping_rem(b),
                    _ => unreachable!(),
                };
                Ok((result_type, convert_scalar(Scalar::I(v), result_type)))
            } else {
                let a = ls.as_u64();
                let b = rs.as_u64();
                if matches!(op, BinOp::Div | BinOp::Rem) && b == 0 {
                    return Err(CompileError::new("integer division by zero"));
                }
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                };
                Ok((result_type, convert_scalar(Scalar::U(v), result_type)))
            }
        }
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
            if result_type.is_float() {
                return Err(CompileError::new("bitwise operation on floating-point operands"));
            }
            let a = ls.as_u64();
            let b = rs.as_u64();
            let v = match op {
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => {
                    if result_type.is_signed() {
                        (ls.as_i64().wrapping_shr(b as u32)) as u64
                    } else {
                        a.wrapping_shr(b as u32)
                    }
                }
                _ => unreachable!(),
            };
            let scalar = if result_type.is_signed() { Scalar::I(v as i64) } else { Scalar::U(v) };
            Ok((result_type, convert_scalar(scalar, result_type)))
        }
        BinOp::LogicalAnd | BinOp::LogicalOr => {
            // Handled with short-circuiting by the caller; provide a
            // non-short-circuit fallback for completeness.
            let a = ls.as_bool();
            let b = rs.as_bool();
            let v = if op == BinOp::LogicalAnd { a && b } else { a || b };
            Ok((ScalarType::Int, Scalar::I(i64::from(v))))
        }
    }
}

/// Evaluate a binary operation on two values (public for reuse in tests).
pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, CompileError> {
    // Vector handling: componentwise with scalar broadcast.
    match (l, r) {
        (Value::Vector(t, a), Value::Vector(_, b)) => {
            if a.len() != b.len() {
                return Err(CompileError::new("vector length mismatch in binary operation"));
            }
            let lanes: Result<Vec<Scalar>, CompileError> = a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    eval_binary(op, &Value::Scalar(*t, *x), &Value::Scalar(*t, *y))?.scalar()
                })
                .collect();
            return Ok(Value::Vector(*t, lanes?));
        }
        (Value::Vector(t, a), Value::Scalar(..)) => {
            let lanes: Result<Vec<Scalar>, CompileError> =
                a.iter().map(|x| eval_binary(op, &Value::Scalar(*t, *x), r)?.scalar()).collect();
            return Ok(Value::Vector(*t, lanes?));
        }
        (Value::Scalar(..), Value::Vector(t, b)) => {
            let lanes: Result<Vec<Scalar>, CompileError> =
                b.iter().map(|y| eval_binary(op, l, &Value::Scalar(*t, *y))?.scalar()).collect();
            return Ok(Value::Vector(*t, lanes?));
        }
        _ => {}
    }

    // Pointer arithmetic.
    if let (Value::Ptr(p), Value::Scalar(_, s)) = (l, r) {
        return Ok(Value::Ptr(eval_binary_ptr(op, p, *s)?));
    }

    let (lt, ls) = match l {
        Value::Scalar(t, s) => (*t, *s),
        other => return Err(CompileError::new(format!("invalid operand of type {}", other.ty()))),
    };
    let (rt, rs) = match r {
        Value::Scalar(t, s) => (*t, *s),
        other => return Err(CompileError::new(format!("invalid operand of type {}", other.ty()))),
    };
    let (t, s) = eval_binary_scalars(op, lt, ls, rt, rs)?;
    Ok(Value::Scalar(t, s))
}

pub(crate) fn eval_unary(op: UnOp, v: &Value) -> Result<Value, CompileError> {
    match op {
        UnOp::Plus => Ok(v.clone()),
        UnOp::Neg => match v {
            Value::Scalar(t, s) => {
                if t.is_float() {
                    Ok(Value::Scalar(*t, Scalar::F(-s.as_f64())))
                } else {
                    Ok(Value::Scalar(
                        if t.is_signed() { *t } else { ScalarType::Long },
                        Scalar::I(-s.as_i64()),
                    ))
                }
            }
            Value::Vector(t, lanes) => {
                let lanes =
                    lanes
                        .iter()
                        .map(|s| {
                            if t.is_float() {
                                Scalar::F(-s.as_f64())
                            } else {
                                Scalar::I(-s.as_i64())
                            }
                        })
                        .collect();
                Ok(Value::Vector(*t, lanes))
            }
            other => Err(CompileError::new(format!("cannot negate {}", other.ty()))),
        },
        UnOp::Not => Ok(Value::int(i64::from(!v.as_bool()?))),
        UnOp::BitNot => match v {
            Value::Scalar(t, s) if t.is_integer() => {
                Ok(Value::Scalar(*t, convert_scalar(Scalar::U(!s.as_u64()), *t)))
            }
            other => Err(CompileError::new(format!("cannot bit-complement {}", other.ty()))),
        },
        UnOp::Deref => Err(CompileError::new("dereference outside of interpreter context")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn run_kernel(
        src: &str,
        kernel: &str,
        range: NdRange,
        args: Vec<KernelArgValue>,
        buffers: Vec<Vec<u8>>,
    ) -> (Vec<Vec<u8>>, WorkItemCounters) {
        let program = Program::build(src).expect("build");
        let k = program.kernel(kernel).expect("kernel");
        let mut buffers = buffers;
        let counters = {
            let mut bindings: Vec<BufferBinding<'_>> =
                buffers.iter_mut().map(|b| BufferBinding::new(b)).collect();
            k.execute(&range, &args, &mut bindings).expect("execute")
        };
        (buffers, counters)
    }

    fn f32s(bytes: &[u8]) -> Vec<f32> {
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    fn u32s(bytes: &[u8]) -> Vec<u32> {
        bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    #[test]
    fn scale_kernel_writes_expected_values() {
        let src = r#"
            __kernel void scale(__global float* data, float factor, uint n) {
                size_t i = get_global_id(0);
                if (i >= n) return;
                data[i] = data[i] * factor;
            }
        "#;
        let n = 16;
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let (buffers, counters) = run_kernel(
            src,
            "scale",
            NdRange::linear(n),
            vec![
                KernelArgValue::Buffer(0),
                KernelArgValue::Scalar(Value::float(2.0)),
                KernelArgValue::Scalar(Value::uint(n as u64)),
            ],
            vec![data],
        );
        assert_eq!(counters.work_items, n as u64);
        assert!(counters.loads >= n as u64);
        assert!(counters.stores >= n as u64);
        let out = f32s(&buffers[0]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as f32) * 2.0);
        }
    }

    #[test]
    fn two_dimensional_ids() {
        let src = r#"
            __kernel void index2d(__global uint* out, uint width) {
                size_t x = get_global_id(0);
                size_t y = get_global_id(1);
                out[y * width + x] = (uint)(y * 100 + x);
            }
        "#;
        let (w, h) = (8usize, 4usize);
        let (buffers, counters) = run_kernel(
            src,
            "index2d",
            NdRange::two_d(w, h),
            vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(w as u64))],
            vec![vec![0u8; w * h * 4]],
        );
        assert_eq!(counters.work_items, (w * h) as u64);
        let out = u32s(&buffers[0]);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 1);
        assert_eq!(out[w], 100);
        assert_eq!(out[3 * w + 7], 307);
    }

    #[test]
    fn for_loop_and_helper_function() {
        let src = r#"
            float accumulate(float base, uint count) {
                float total = base;
                for (uint i = 0; i < count; i++) {
                    total += 1.0f;
                }
                return total;
            }
            __kernel void k(__global float* out, uint count) {
                size_t gid = get_global_id(0);
                out[gid] = accumulate(0.0f, count);
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "k",
            NdRange::linear(4),
            vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(10))],
            vec![vec![0u8; 16]],
        );
        assert_eq!(f32s(&buffers[0]), vec![10.0; 4]);
    }

    #[test]
    fn while_loop_mandelbrot_style() {
        let src = r#"
            __kernel void iterate(__global uint* out, float cr, float ci, uint max_iter) {
                size_t gid = get_global_id(0);
                float zr = 0.0f;
                float zi = 0.0f;
                uint iter = 0;
                while (zr * zr + zi * zi <= 4.0f && iter < max_iter) {
                    float t = zr * zr - zi * zi + cr;
                    zi = 2.0f * zr * zi + ci;
                    zr = t;
                    iter++;
                }
                out[gid] = iter;
            }
        "#;
        // c = 0 stays bounded -> hits max_iter; c = 2 escapes quickly.
        let (buffers, _) = run_kernel(
            src,
            "iterate",
            NdRange::linear(1),
            vec![
                KernelArgValue::Buffer(0),
                KernelArgValue::Scalar(Value::float(0.0)),
                KernelArgValue::Scalar(Value::float(0.0)),
                KernelArgValue::Scalar(Value::uint(50)),
            ],
            vec![vec![0u8; 4]],
        );
        assert_eq!(u32s(&buffers[0])[0], 50);
        let (buffers, _) = run_kernel(
            src,
            "iterate",
            NdRange::linear(1),
            vec![
                KernelArgValue::Buffer(0),
                KernelArgValue::Scalar(Value::float(2.0)),
                KernelArgValue::Scalar(Value::float(2.0)),
                KernelArgValue::Scalar(Value::uint(50)),
            ],
            vec![vec![0u8; 4]],
        );
        assert!(u32s(&buffers[0])[0] < 5);
    }

    #[test]
    fn vectors_and_swizzles() {
        let src = r#"
            __kernel void v(__global float* out) {
                float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                float4 b = a * 2.0f;
                float2 hi = b.zw;
                out[0] = dot(a, b);
                out[1] = hi.x + hi.y;
                out[2] = length((float2)(3.0f, 4.0f));
                b.x = 10.0f;
                out[3] = b.x;
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "v",
            NdRange::linear(1),
            vec![KernelArgValue::Buffer(0)],
            vec![vec![0u8; 16]],
        );
        let out = f32s(&buffers[0]);
        assert_eq!(out[0], 60.0); // 1*2 + 2*4 + 3*6 + 4*8
        assert_eq!(out[1], 14.0); // 6 + 8
        assert_eq!(out[2], 5.0);
        assert_eq!(out[3], 10.0);
    }

    #[test]
    fn atomic_add_accumulates_across_work_items() {
        let src = r#"
            __kernel void count(__global int* counter) {
                atomic_add(counter, 1);
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "count",
            NdRange::linear(100),
            vec![KernelArgValue::Buffer(0)],
            vec![vec![0u8; 4]],
        );
        assert_eq!(u32s(&buffers[0])[0], 100);
    }

    #[test]
    fn local_memory_argument_with_barrier() {
        // Every item publishes into `__local` scratch, the barrier makes
        // those writes visible group-wide, then each item reads its
        // neighbour's slot — only correct with real barrier semantics.
        let src = r#"
            __kernel void uses_local(__global int* out, __local int* scratch) {
                size_t lid = get_local_id(0);
                size_t n = get_local_size(0);
                scratch[lid] = (int)(lid * 10);
                barrier(CLK_LOCAL_MEM_FENCE);
                out[get_global_id(0)] = scratch[(lid + 1) % n];
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "uses_local",
            NdRange::linear(4),
            vec![KernelArgValue::Buffer(0), KernelArgValue::Local(64)],
            vec![vec![0u8; 16]],
        );
        assert_eq!(u32s(&buffers[0]), vec![10, 20, 30, 0]);
    }

    #[test]
    fn tree_walker_rejects_barrier_with_local_writes() {
        // The serial tree walker cannot execute barrier-synchronised
        // `__local` traffic; it must fail loudly, not return wrong data.
        let src = r#"
            __kernel void uses_local(__global int* out, __local int* scratch) {
                size_t lid = get_local_id(0);
                scratch[lid] = (int)lid;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[lid] = scratch[lid];
            }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("uses_local").unwrap();
        let mut buffer = vec![0u8; 16];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute_tree(
                &NdRange::linear(4),
                &[KernelArgValue::Buffer(0), KernelArgValue::Local(64)],
                &mut bindings,
            )
            .unwrap_err();
        assert!(err.message.contains("barrier"));
        assert!(err.message.contains("__local"));
    }

    #[test]
    fn tree_walker_still_runs_barrier_free_local_writes() {
        // No barrier: per-item local scratch without synchronisation stays
        // on the legacy path.
        let src = r#"
            __kernel void scratchpad(__global int* out, __local int* scratch) {
                size_t gid = get_global_id(0);
                scratch[gid] = (int)(gid * 2);
                out[gid] = scratch[gid] + 1;
            }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("scratchpad").unwrap();
        let mut buffer = vec![0u8; 16];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        k.execute_tree(
            &NdRange::linear(4),
            &[KernelArgValue::Buffer(0), KernelArgValue::Local(64)],
            &mut bindings,
        )
        .expect("barrier-free local use works on the tree walker");
        assert_eq!(u32s(&buffer), vec![1, 3, 5, 7]);
    }

    #[test]
    fn ternary_break_continue_and_modulo() {
        let src = r#"
            __kernel void f(__global int* out, int n) {
                int total = 0;
                for (int i = 0; i < 1000; i++) {
                    if (i >= n) break;
                    if (i % 2 == 1) continue;
                    total += i;
                }
                out[0] = total > 10 ? total : -total;
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "f",
            NdRange::linear(1),
            vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::int(10))],
            vec![vec![0u8; 4]],
        );
        // 0+2+4+6+8 = 20
        assert_eq!(u32s(&buffers[0])[0], 20);
    }

    #[test]
    fn out_of_bounds_store_reports_error() {
        let src = r#"
            __kernel void oob(__global int* out) {
                out[1000] = 1;
            }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("oob").unwrap();
        let mut buffer = vec![0u8; 8];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute(&NdRange::linear(1), &[KernelArgValue::Buffer(0)], &mut bindings)
            .unwrap_err();
        assert!(err.message.contains("out-of-bounds"));
    }

    #[test]
    fn division_by_zero_reports_error() {
        let src = r#"
            __kernel void div(__global int* out, int d) {
                out[0] = 10 / d;
            }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("div").unwrap();
        let mut buffer = vec![0u8; 4];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute(
                &NdRange::linear(1),
                &[KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::int(0))],
                &mut bindings,
            )
            .unwrap_err();
        assert!(err.message.contains("division by zero"));
    }

    #[test]
    fn wrong_argument_count_is_rejected() {
        let src = "__kernel void f(__global int* a, int b) { a[0] = b; }";
        let program = Program::build(src).unwrap();
        let k = program.kernel("f").unwrap();
        let mut buffer = vec![0u8; 4];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute(&NdRange::linear(1), &[KernelArgValue::Buffer(0)], &mut bindings)
            .unwrap_err();
        assert!(err.message.contains("expects 2 argument"));
    }

    #[test]
    fn infinite_loop_is_bounded() {
        let src = r#"
            __kernel void spin(__global int* out) {
                while (true) { out[0] = out[0]; }
            }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("spin").unwrap();
        let mut buffer = vec![0u8; 4];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute(&NdRange::linear(1), &[KernelArgValue::Buffer(0)], &mut bindings)
            .unwrap_err();
        assert!(err.message.contains("step limit"));
    }

    #[test]
    fn recursion_is_bounded() {
        let src = r#"
            int rec(int n) { return rec(n + 1); }
            __kernel void f(__global int* out) { out[0] = rec(0); }
        "#;
        let program = Program::build(src).unwrap();
        let k = program.kernel("f").unwrap();
        let mut buffer = vec![0u8; 4];
        let mut bindings = vec![BufferBinding::new(&mut buffer)];
        let err = k
            .execute(&NdRange::linear(1), &[KernelArgValue::Buffer(0)], &mut bindings)
            .unwrap_err();
        assert!(err.message.contains("call depth"));
    }

    #[test]
    fn signed_negative_index_guard_comparison() {
        // `int i` compared against `uint n` must not wrap.
        let src = r#"
            __kernel void f(__global int* out, uint n) {
                int i = -1;
                out[0] = i < n ? 1 : 0;
            }
        "#;
        let (buffers, _) = run_kernel(
            src,
            "f",
            NdRange::linear(1),
            vec![KernelArgValue::Buffer(0), KernelArgValue::Scalar(Value::uint(4))],
            vec![vec![0u8; 4]],
        );
        assert_eq!(u32s(&buffers[0])[0], 1);
    }

    #[test]
    fn ndrange_helpers() {
        assert_eq!(NdRange::linear(10).total_items(), 10);
        assert_eq!(NdRange::two_d(4, 5).total_items(), 20);
        assert_eq!(NdRange::three_d(2, 3, 4).total_items(), 24);
        let r = NdRange::linear(16).with_local([4, 1, 1]).with_offset([2, 0, 0]);
        assert_eq!(r.local_size(), [4, 1, 1]);
        assert_eq!(r.offset[0], 2);
    }
}
