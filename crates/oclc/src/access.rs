//! Static kernel-argument access analysis (parse-only, no code generation).
//!
//! The dOpenCL client uses this to *derive* coherence launch hints: a
//! `__global` pointer argument that a kernel provably never writes needs no
//! post-launch dirtying (`reads_only`), and one whose every access is
//! indexed by `get_global_id(0)` touches exactly the byte slice implied by
//! a 1-D NDRange (`writes_slice`).  Explicit hints given by the caller
//! always take precedence — the analysis only fills the gaps.
//!
//! The analysis is deliberately conservative: any aliasing (the pointer
//! escapes into a call or another variable), pointer arithmetic, or an
//! index expression it cannot prove to be the linear global id demotes the
//! argument to [`ArgAccess::WrittenWhole`], which reproduces today's
//! whole-buffer treatment.  It runs on the *parsed* AST only — no semantic
//! analysis or lowering — so using it never bumps the compile counter that
//! build caching is measured by ([`crate::total_builds`]).

use crate::ast::{Block, Expr, ExprKind, Function, Param, Stmt, TranslationUnit};
use crate::error::CompileError;
use crate::types::{AddressSpace, Type};
use std::collections::HashSet;

/// How a kernel accesses one of its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgAccess {
    /// Not a `__global` buffer argument (scalar, `__local`, `__private`):
    /// the coherence protocol does not track it.
    NotTracked,
    /// The kernel never writes through this pointer (declared `const` /
    /// `__constant`, or proven write-free): launches may skip dirtying it.
    ReadOnly,
    /// Every read and write through this pointer is indexed by exactly
    /// `get_global_id(0)` (directly or via a variable initialized to it and
    /// never reassigned): a 1-D launch touches only the byte slice
    /// `[offset * elem_bytes, (offset + size) * elem_bytes)`.
    WrittenLinear {
        /// Size in bytes of the pointee element.
        elem_bytes: usize,
    },
    /// The kernel may write anywhere in the buffer (or the analysis could
    /// not prove otherwise): conservative whole-buffer treatment.
    WrittenWhole,
}

/// Access classification of every parameter of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAccess {
    /// The kernel function's name.
    pub name: String,
    /// Per-parameter access, in declaration order (the same order as
    /// `clSetKernelArg` indices).
    pub args: Vec<ArgAccess>,
}

/// Analyze `source` and classify every parameter of every `__kernel`
/// function.  Only the lexer and parser run; sources the parser rejects
/// return the parse error.
pub fn analyze(source: &str) -> Result<Vec<KernelAccess>, CompileError> {
    let tokens = crate::lexer::lex(source)?;
    let unit = crate::parser::parse(&tokens)?;
    Ok(analyze_unit(&unit))
}

/// Classify every kernel of an already-parsed translation unit.
pub fn analyze_unit(unit: &TranslationUnit) -> Vec<KernelAccess> {
    unit.functions
        .iter()
        .filter(|f| f.is_kernel)
        .map(|f| KernelAccess {
            name: f.name.clone(),
            args: f.params.iter().map(|p| classify_param(f, p)).collect(),
        })
        .collect()
}

fn classify_param(function: &Function, param: &Param) -> ArgAccess {
    let Type::Pointer { pointee, space, is_const } = &param.ty else {
        return ArgAccess::NotTracked;
    };
    match space {
        AddressSpace::Constant => return ArgAccess::ReadOnly,
        AddressSpace::Global => {}
        // `__local` / `__private` pointers are not coherence-tracked
        // buffers.
        _ => return ArgAccess::NotTracked,
    }
    if *is_const {
        return ArgAccess::ReadOnly;
    }

    let gid_vars = linear_gid_variables(&function.body);
    let mut facts = Facts::default();
    scan_block(&function.body, &param.name, &gid_vars, &mut facts);

    if facts.escapes {
        return ArgAccess::WrittenWhole;
    }
    if !facts.written {
        return ArgAccess::ReadOnly;
    }
    if facts.all_accesses_linear {
        ArgAccess::WrittenLinear { elem_bytes: pointee.size().max(1) }
    } else {
        ArgAccess::WrittenWhole
    }
}

/// Accumulated knowledge about one pointer parameter.
#[derive(Debug)]
struct Facts {
    /// A write through the pointer was seen.
    written: bool,
    /// Every index expression (reads *and* writes — a stale read outside
    /// the declared slice would be just as wrong) is the linear global id.
    all_accesses_linear: bool,
    /// The pointer escapes: passed to a call, copied into a variable,
    /// dereferenced without an index, reassigned, or used in arithmetic.
    escapes: bool,
}

impl Default for Facts {
    fn default() -> Self {
        Facts { written: false, all_accesses_linear: true, escapes: false }
    }
}

/// Names of variables provably equal to `get_global_id(0)` for the whole
/// function: declared with that initializer and never reassigned.
fn linear_gid_variables(body: &Block) -> HashSet<String> {
    let mut candidates = HashSet::new();
    let mut reassigned = HashSet::new();
    collect_gid_candidates(body, &mut candidates, &mut reassigned);
    candidates.retain(|name| !reassigned.contains(name));
    candidates
}

fn collect_gid_candidates(
    block: &Block,
    candidates: &mut HashSet<String>,
    reassigned: &mut HashSet<String>,
) {
    for stmt in &block.statements {
        collect_gid_candidates_stmt(stmt, candidates, reassigned);
    }
}

fn collect_gid_candidates_stmt(
    stmt: &Stmt,
    candidates: &mut HashSet<String>,
    reassigned: &mut HashSet<String>,
) {
    match stmt {
        Stmt::Decl { name, init, .. } => {
            if init.as_ref().is_some_and(is_gid0_call) {
                candidates.insert(name.clone());
            } else {
                // A same-named declaration with another initializer shadows
                // (the subset has one scope per function in practice; be
                // conservative either way).
                reassigned.insert(name.clone());
            }
        }
        Stmt::Expr(e) => collect_reassignments(e, reassigned),
        Stmt::If { cond, then_block, else_block } => {
            collect_reassignments(cond, reassigned);
            collect_gid_candidates(then_block, candidates, reassigned);
            if let Some(b) = else_block {
                collect_gid_candidates(b, candidates, reassigned);
            }
        }
        Stmt::While { cond, body } => {
            collect_reassignments(cond, reassigned);
            collect_gid_candidates(body, candidates, reassigned);
        }
        Stmt::DoWhile { body, cond } => {
            collect_gid_candidates(body, candidates, reassigned);
            collect_reassignments(cond, reassigned);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(s) = init {
                collect_gid_candidates_stmt(s, candidates, reassigned);
            }
            if let Some(c) = cond {
                collect_reassignments(c, reassigned);
            }
            if let Some(s) = step {
                collect_reassignments(s, reassigned);
            }
            collect_gid_candidates(body, candidates, reassigned);
        }
        Stmt::Return(Some(e)) => collect_reassignments(e, reassigned),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => collect_gid_candidates(b, candidates, reassigned),
    }
}

/// Record every variable an expression assigns to (plain, compound, or
/// increment/decrement).
fn collect_reassignments(expr: &Expr, reassigned: &mut HashSet<String>) {
    match &expr.kind {
        ExprKind::Assign { target, value, .. } => {
            if let ExprKind::Ident(name) = &target.kind {
                reassigned.insert(name.clone());
            }
            collect_reassignments(target, reassigned);
            collect_reassignments(value, reassigned);
        }
        ExprKind::PostIncDec { target, .. } | ExprKind::PreIncDec { target, .. } => {
            if let ExprKind::Ident(name) = &target.kind {
                reassigned.insert(name.clone());
            }
            collect_reassignments(target, reassigned);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_reassignments(lhs, reassigned);
            collect_reassignments(rhs, reassigned);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => {
            collect_reassignments(expr, reassigned)
        }
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            collect_reassignments(cond, reassigned);
            collect_reassignments(then_expr, reassigned);
            collect_reassignments(else_expr, reassigned);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_reassignments(a, reassigned);
            }
        }
        ExprKind::Index { base, index } => {
            collect_reassignments(base, reassigned);
            collect_reassignments(index, reassigned);
        }
        ExprKind::Member { base, .. } => collect_reassignments(base, reassigned),
        ExprKind::IntLit(..)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Ident(_) => {}
    }
}

/// `get_global_id(0)` — the only work-item query the linear proof accepts.
fn is_gid0_call(expr: &Expr) -> bool {
    match &expr.kind {
        ExprKind::Call { name, args } => {
            name == "get_global_id"
                && args.len() == 1
                && matches!(args[0].kind, ExprKind::IntLit(0, _))
        }
        // `int i = (int)get_global_id(0);` is idiomatic.
        ExprKind::Cast { expr, .. } => is_gid0_call(expr),
        _ => false,
    }
}

fn is_linear_index(expr: &Expr, gid_vars: &HashSet<String>) -> bool {
    if is_gid0_call(expr) {
        return true;
    }
    match &expr.kind {
        ExprKind::Ident(name) => gid_vars.contains(name),
        ExprKind::Cast { expr, .. } => is_linear_index(expr, gid_vars),
        _ => false,
    }
}

fn scan_block(block: &Block, param: &str, gid_vars: &HashSet<String>, facts: &mut Facts) {
    for stmt in &block.statements {
        scan_stmt(stmt, param, gid_vars, facts);
    }
}

fn scan_stmt(stmt: &Stmt, param: &str, gid_vars: &HashSet<String>, facts: &mut Facts) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                scan_expr(e, param, gid_vars, facts);
            }
        }
        Stmt::Expr(e) => scan_expr(e, param, gid_vars, facts),
        Stmt::If { cond, then_block, else_block } => {
            scan_expr(cond, param, gid_vars, facts);
            scan_block(then_block, param, gid_vars, facts);
            if let Some(b) = else_block {
                scan_block(b, param, gid_vars, facts);
            }
        }
        Stmt::While { cond, body } => {
            scan_expr(cond, param, gid_vars, facts);
            scan_block(body, param, gid_vars, facts);
        }
        Stmt::DoWhile { body, cond } => {
            scan_block(body, param, gid_vars, facts);
            scan_expr(cond, param, gid_vars, facts);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(s) = init {
                scan_stmt(s, param, gid_vars, facts);
            }
            if let Some(c) = cond {
                scan_expr(c, param, gid_vars, facts);
            }
            if let Some(s) = step {
                scan_expr(s, param, gid_vars, facts);
            }
            scan_block(body, param, gid_vars, facts);
        }
        Stmt::Return(Some(e)) => scan_expr(e, param, gid_vars, facts),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => scan_block(b, param, gid_vars, facts),
    }
}

fn scan_expr(expr: &Expr, param: &str, gid_vars: &HashSet<String>, facts: &mut Facts) {
    match &expr.kind {
        // A bare mention of the pointer outside an index base is an escape
        // (argument to a call, copied into a variable, arithmetic, ...).
        ExprKind::Ident(name) => {
            if name == param {
                facts.escapes = true;
            }
        }
        ExprKind::Index { base, index } => {
            if matches!(&base.kind, ExprKind::Ident(name) if name == param) {
                if !is_linear_index(index, gid_vars) {
                    facts.all_accesses_linear = false;
                }
            } else {
                scan_expr(base, param, gid_vars, facts);
            }
            scan_expr(index, param, gid_vars, facts);
        }
        ExprKind::Assign { target, value, .. } => {
            if let ExprKind::Index { base, index } = &target.kind {
                if matches!(&base.kind, ExprKind::Ident(name) if name == param) {
                    facts.written = true;
                    if !is_linear_index(index, gid_vars) {
                        facts.all_accesses_linear = false;
                    }
                    scan_expr(index, param, gid_vars, facts);
                    scan_expr(value, param, gid_vars, facts);
                    return;
                }
            }
            // `*p = x` or `p = ...`: unindexed write / pointer reassignment.
            if unindexed_param_lvalue(target, param) {
                facts.written = true;
                facts.escapes = true;
            }
            scan_expr(target, param, gid_vars, facts);
            scan_expr(value, param, gid_vars, facts);
        }
        ExprKind::PostIncDec { target, .. } | ExprKind::PreIncDec { target, .. } => {
            if let ExprKind::Index { base, index } = &target.kind {
                if matches!(&base.kind, ExprKind::Ident(name) if name == param) {
                    facts.written = true;
                    if !is_linear_index(index, gid_vars) {
                        facts.all_accesses_linear = false;
                    }
                    scan_expr(index, param, gid_vars, facts);
                    return;
                }
            }
            if unindexed_param_lvalue(target, param) {
                facts.written = true;
                facts.escapes = true;
            }
            scan_expr(target, param, gid_vars, facts);
        }
        ExprKind::Unary { expr: inner, .. } => {
            // Covers `*p` reads (deref without index): the bare-ident rule
            // below flags the escape.
            scan_expr(inner, param, gid_vars, facts);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, param, gid_vars, facts);
            scan_expr(rhs, param, gid_vars, facts);
        }
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            scan_expr(cond, param, gid_vars, facts);
            scan_expr(then_expr, param, gid_vars, facts);
            scan_expr(else_expr, param, gid_vars, facts);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                scan_expr(a, param, gid_vars, facts);
            }
        }
        ExprKind::Member { base, .. } | ExprKind::Cast { expr: base, .. } => {
            scan_expr(base, param, gid_vars, facts)
        }
        ExprKind::IntLit(..) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) => {}
    }
}

/// `p` or `*p` as an assignment target, where `p` is the parameter.
fn unindexed_param_lvalue(target: &Expr, param: &str) -> bool {
    match &target.kind {
        ExprKind::Ident(name) => name == param,
        ExprKind::Unary { expr, .. } => unindexed_param_lvalue(expr, param),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access_of(source: &str, kernel: &str) -> Vec<ArgAccess> {
        let all = analyze(source).expect("source parses");
        all.into_iter().find(|k| k.name == kernel).expect("kernel present").args
    }

    #[test]
    fn const_and_constant_pointers_are_read_only() {
        let args = access_of(
            r#"__kernel void k(__global const float* in, __constant float* lut,
                              __global float* out) {
                int i = get_global_id(0);
                out[i] = in[i] + lut[0];
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::ReadOnly);
        assert_eq!(args[1], ArgAccess::ReadOnly);
        assert_eq!(args[2], ArgAccess::WrittenLinear { elem_bytes: 4 });
    }

    #[test]
    fn unwritten_global_pointer_is_read_only() {
        let args = access_of(
            r#"__kernel void k(__global float* in, __global float* out) {
                int i = get_global_id(0);
                out[i] = in[i] * 2.0f;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::ReadOnly);
        assert_eq!(args[1], ArgAccess::WrittenLinear { elem_bytes: 4 });
    }

    #[test]
    fn direct_gid_index_and_casts_stay_linear() {
        let args = access_of(
            r#"__kernel void k(__global uint* out) {
                out[get_global_id(0)] = 1u;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenLinear { elem_bytes: 4 });
        let args = access_of(
            r#"__kernel void k(__global double* out) {
                int i = (int)get_global_id(0);
                out[i] = 0.5;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenLinear { elem_bytes: 8 });
    }

    #[test]
    fn nonlinear_index_or_reassigned_gid_demotes_to_whole() {
        // Index arithmetic is not provably linear.
        let args = access_of(
            r#"__kernel void k(__global float* out) {
                int i = get_global_id(0);
                out[i * 2] = 1.0f;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenWhole);
        // The gid variable is reassigned before use.
        let args = access_of(
            r#"__kernel void k(__global float* out) {
                int i = get_global_id(0);
                i = i + 1;
                out[i] = 1.0f;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenWhole);
    }

    #[test]
    fn nonlinear_read_demotes_even_a_linear_writer() {
        // Writes land on gid, but a *read* ranges over the whole buffer:
        // slicing validation to the gid element would read stale bytes.
        let args = access_of(
            r#"__kernel void k(__global float* data, uint n) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (uint j = 0u; j < n; j++) { acc = acc + data[j]; }
                data[i] = acc;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenWhole);
    }

    #[test]
    fn escapes_are_conservative() {
        // Passed to a helper: the callee may write anywhere.
        let args = access_of(
            r#"void helper(__global float* p) { p[3] = 1.0f; }
               __kernel void k(__global float* out) { helper(out); }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenWhole);
        // Aliased into a local variable.
        let args = access_of(
            r#"__kernel void k(__global float* out) {
                __global float* q = out;
                q[0] = 1.0f;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenWhole);
    }

    #[test]
    fn scalars_and_local_pointers_are_not_tracked() {
        let args = access_of(
            r#"__kernel void k(__global float* out, __local float* tmp, uint n) {
                int i = get_global_id(0);
                tmp[0] = 1.0f;
                out[i] = tmp[0] + (float)n;
            }"#,
            "k",
        );
        assert_eq!(args[0], ArgAccess::WrittenLinear { elem_bytes: 4 });
        assert_eq!(args[1], ArgAccess::NotTracked);
        assert_eq!(args[2], ArgAccess::NotTracked);
    }

    #[test]
    fn analysis_does_not_bump_the_build_counter() {
        let before = crate::total_builds();
        let _ = analyze(
            r#"__kernel void k(__global float* out) {
                out[get_global_id(0)] = 1.0f;
            }"#,
        )
        .unwrap();
        assert_eq!(crate::total_builds(), before);
    }

    #[test]
    fn helper_functions_are_skipped_and_parse_errors_surface() {
        let all = analyze("float f(float x) { return x; }").unwrap();
        assert!(all.is_empty());
        assert!(analyze("__kernel void broken(").is_err());
    }
}
