//! Abstract syntax tree for the OpenCL C subset.

use crate::error::Location;
use crate::types::Type;

/// Index of a function within a [`TranslationUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionIndex(pub usize);

/// A fully parsed source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslationUnit {
    /// Functions in declaration order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Find a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FunctionIndex, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FunctionIndex(i), f))
    }
}

/// A function definition (kernel or helper).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Whether the function is declared `__kernel`.
    pub is_kernel: bool,
    /// Declared return type.
    pub return_type: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
    /// Location of the declaration.
    pub location: Location,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (pointers carry their address space).
    pub ty: Type,
}

/// A brace-delimited block of statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub statements: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration, e.g. `float x = 1.0f;`.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location of the declaration.
        location: Location,
    },
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { .. } while (cond);`
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) { .. }`
    For {
        /// Optional init statement (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means "true").
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `+x`
    Plus,
    /// `*p` (pointer dereference)
    Deref,
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Where it starts.
    pub location: Location,
}

impl Expr {
    /// Construct an expression node.
    pub fn new(kind: ExprKind, location: Location) -> Self {
        Expr { kind, location }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (value, explicitly-unsigned flag).
    IntLit(u64, bool),
    /// Floating-point literal.
    FloatLit(f64),
    /// `true` / `false`.
    BoolLit(bool),
    /// Variable reference.
    Ident(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Assignment, optionally compound (`op` is `Some(Add)` for `+=`).
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Assignment target (identifier, index or member expression).
        target: Box<Expr>,
        /// Value to assign.
        value: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then_expr: Box<Expr>,
        /// Value if false.
        else_expr: Box<Expr>,
    },
    /// Function call (user function, built-in, or vector constructor such as
    /// `(float4)(a, b, c, d)` which the parser lowers to a call named
    /// `__vec_float4`).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index {
        /// Pointer or vector expression.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
    },
    /// `base.member` — vector component access (`.x`, `.y`, `.z`, `.w`,
    /// `.s0`–`.sF`, or swizzles like `.xy`).
    Member {
        /// Vector expression.
        base: Box<Expr>,
        /// Component name.
        member: String,
    },
    /// `(type)expr`
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `x++` / `x--`
    PostIncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// True for `++`.
        inc: bool,
    },
    /// `++x` / `--x`
    PreIncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// True for `++`.
        inc: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarType;

    #[test]
    fn function_lookup_by_name() {
        let unit = TranslationUnit {
            functions: vec![Function {
                name: "f".into(),
                is_kernel: true,
                return_type: Type::Void,
                params: vec![Param { name: "x".into(), ty: Type::scalar(ScalarType::Int) }],
                body: Block::default(),
                location: Location::default(),
            }],
        };
        let (idx, f) = unit.function_by_name("f").unwrap();
        assert_eq!(idx, FunctionIndex(0));
        assert_eq!(f.params.len(), 1);
        assert!(unit.function_by_name("g").is_none());
    }
}
