//! Programs: OpenCL C source programs built at runtime, plus *built-in*
//! kernels (native Rust implementations registered by name, mirroring
//! `clCreateProgramWithBuiltInKernels` from OpenCL 1.2).

use crate::context::Context;
use crate::error::{ClError, Result};
use crate::kernel::Kernel;
use oclc::{BufferBinding, KernelArgValue, NdRange, WorkItemCounters};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static NEXT_PROGRAM_ID: AtomicU64 = AtomicU64::new(1);

/// Signature of a built-in (native) kernel implementation.
///
/// Built-in kernels receive the same argument representation as interpreted
/// kernels; the returned counters drive the device's modelled execution time
/// (`ops` is interpreted as the number of floating-point operations).
pub type BuiltInKernelFn = dyn Fn(
        &NdRange,
        &[KernelArgValue],
        &mut [BufferBinding<'_>],
    ) -> std::result::Result<WorkItemCounters, String>
    + Send
    + Sync;

fn registry() -> &'static Mutex<HashMap<String, Arc<BuiltInKernelFn>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<BuiltInKernelFn>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Register a built-in kernel under `name` (process-wide).
///
/// Re-registering a name replaces the previous implementation; this keeps
/// tests independent.
pub fn register_built_in_kernel(name: &str, f: Arc<BuiltInKernelFn>) {
    registry().lock().insert(name.to_string(), f);
}

/// Look up a registered built-in kernel.
pub fn built_in_kernel(name: &str) -> Option<Arc<BuiltInKernelFn>> {
    registry().lock().get(name).cloned()
}

/// Names of all registered built-in kernels.
pub fn built_in_kernel_names() -> Vec<String> {
    let mut names: Vec<String> = registry().lock().keys().cloned().collect();
    names.sort();
    names
}

enum ProgramKind {
    Source { source: String, built: Mutex<Option<std::result::Result<Arc<oclc::Program>, String>>> },
    BuiltIn { names: Vec<String> },
}

/// A program object (`cl_program`).
pub struct Program {
    id: u64,
    context: Arc<Context>,
    kind: ProgramKind,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program").field("id", &self.id).field("built", &self.is_built()).finish()
    }
}

impl Program {
    /// `clCreateProgramWithSource`.
    pub fn with_source(context: Arc<Context>, source: impl Into<String>) -> Arc<Program> {
        Arc::new(Program {
            id: NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed),
            context,
            kind: ProgramKind::Source { source: source.into(), built: Mutex::new(None) },
        })
    }

    /// `clCreateProgramWithBuiltInKernels`: `names` is a semicolon-separated
    /// list of registered built-in kernel names.
    pub fn with_built_in_kernels(context: Arc<Context>, names: &str) -> Result<Arc<Program>> {
        let names: Vec<String> =
            names.split(';').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if names.is_empty() {
            return Err(ClError::InvalidValue("no built-in kernel names given".into()));
        }
        for n in &names {
            if built_in_kernel(n).is_none() {
                return Err(ClError::InvalidKernelName(format!(
                    "built-in kernel '{n}' is not registered"
                )));
            }
        }
        Ok(Arc::new(Program {
            id: NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed),
            context,
            kind: ProgramKind::BuiltIn { names },
        }))
    }

    /// Unique program id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The owning context.
    pub fn context(&self) -> &Arc<Context> {
        &self.context
    }

    /// The program source, if this is a source program.
    pub fn source(&self) -> Option<&str> {
        match &self.kind {
            ProgramKind::Source { source, .. } => Some(source),
            ProgramKind::BuiltIn { .. } => None,
        }
    }

    /// `clBuildProgram`: compile the source.  Built-in programs build
    /// trivially.
    pub fn build(&self) -> Result<()> {
        match &self.kind {
            ProgramKind::BuiltIn { .. } => Ok(()),
            ProgramKind::Source { source, built } => {
                let mut slot = built.lock();
                if let Some(result) = slot.as_ref() {
                    return match result {
                        Ok(_) => Ok(()),
                        Err(log) => Err(ClError::BuildProgramFailure(log.clone())),
                    };
                }
                match oclc::Program::build(source) {
                    Ok(p) => {
                        *slot = Some(Ok(Arc::new(p)));
                        Ok(())
                    }
                    Err(log) => {
                        let text = log.to_string();
                        *slot = Some(Err(text.clone()));
                        Err(ClError::BuildProgramFailure(text))
                    }
                }
            }
        }
    }

    /// `CL_PROGRAM_BUILD_LOG`.
    pub fn build_log(&self) -> String {
        match &self.kind {
            ProgramKind::BuiltIn { .. } => String::new(),
            ProgramKind::Source { built, .. } => match built.lock().as_ref() {
                Some(Ok(_)) | None => String::new(),
                Some(Err(log)) => log.clone(),
            },
        }
    }

    /// True after a successful [`Program::build`].
    pub fn is_built(&self) -> bool {
        match &self.kind {
            ProgramKind::BuiltIn { .. } => true,
            ProgramKind::Source { built, .. } => matches!(built.lock().as_ref(), Some(Ok(_))),
        }
    }

    /// Kernel names available in the (built) program.
    pub fn kernel_names(&self) -> Vec<String> {
        match &self.kind {
            ProgramKind::BuiltIn { names } => names.clone(),
            ProgramKind::Source { built, .. } => match built.lock().as_ref() {
                Some(Ok(p)) => p.kernel_names(),
                _ => Vec::new(),
            },
        }
    }

    /// True if this program exposes built-in (native) kernels.
    pub fn is_built_in(&self) -> bool {
        matches!(self.kind, ProgramKind::BuiltIn { .. })
    }

    /// `clCreateKernel`.
    pub fn create_kernel(self: &Arc<Self>, name: &str) -> Result<Arc<Kernel>> {
        match &self.kind {
            ProgramKind::BuiltIn { names } => {
                if !names.iter().any(|n| n == name) {
                    return Err(ClError::InvalidKernelName(format!(
                        "'{name}' is not part of this built-in program"
                    )));
                }
                Ok(Kernel::new(Arc::clone(self), name, None))
            }
            ProgramKind::Source { built, .. } => {
                let guard = built.lock();
                let Some(Ok(program)) = guard.as_ref() else {
                    return Err(ClError::InvalidOperation(
                        "program must be built before creating kernels".into(),
                    ));
                };
                let Some(handle) = program.kernel(name) else {
                    return Err(ClError::InvalidKernelName(format!(
                        "no kernel named '{name}' in program"
                    )));
                };
                drop(guard);
                // Cache the compiled handle on the kernel object so that
                // every enqueue executes the already-lowered bytecode instead
                // of re-resolving (or worse, re-building) the program.
                Ok(Kernel::new(Arc::clone(self), name, Some(handle)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceType};
    use crate::profile::DeviceProfile;

    fn ctx() -> Arc<Context> {
        Context::new(vec![Device::new(DeviceType::Cpu, DeviceProfile::test_device("d"))]).unwrap()
    }

    const SRC: &str = r#"
        __kernel void fill(__global int* out, int v) {
            out[get_global_id(0)] = v;
        }
    "#;

    #[test]
    fn source_program_builds_and_creates_kernels() {
        let p = Program::with_source(ctx(), SRC);
        assert!(!p.is_built());
        assert!(p.create_kernel("fill").is_err(), "must build first");
        p.build().unwrap();
        assert!(p.is_built());
        assert_eq!(p.kernel_names(), vec!["fill".to_string()]);
        let k = p.create_kernel("fill").unwrap();
        assert_eq!(k.name(), "fill");
        assert!(p.create_kernel("missing").is_err());
        assert!(p.build_log().is_empty());
        assert_eq!(p.source(), Some(SRC));
    }

    #[test]
    fn broken_source_reports_build_log() {
        let p = Program::with_source(ctx(), "__kernel void broken( {");
        let err = p.build().unwrap_err();
        assert!(matches!(err, ClError::BuildProgramFailure(_)));
        assert!(!p.build_log().is_empty());
        assert!(!p.is_built());
        // Building again returns the cached failure.
        assert!(p.build().is_err());
    }

    #[test]
    fn built_in_kernels_require_registration() {
        assert!(Program::with_built_in_kernels(ctx(), "definitely_not_registered").is_err());
        register_built_in_kernel(
            "unit_test_noop",
            Arc::new(|range, _args, _bufs| {
                Ok(WorkItemCounters {
                    work_items: range.total_items() as u64,
                    ..Default::default()
                })
            }),
        );
        let p = Program::with_built_in_kernels(ctx(), "unit_test_noop").unwrap();
        assert!(p.is_built());
        assert!(p.is_built_in());
        assert!(p.source().is_none());
        let k = p.create_kernel("unit_test_noop").unwrap();
        assert_eq!(k.name(), "unit_test_noop");
        assert!(p.create_kernel("other").is_err());
        assert!(built_in_kernel_names().contains(&"unit_test_noop".to_string()));
    }

    #[test]
    fn empty_built_in_name_list_rejected() {
        assert!(Program::with_built_in_kernels(ctx(), " ; ;").is_err());
    }
}
