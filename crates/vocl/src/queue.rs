//! In-order command queues with a worker thread per queue.
//!
//! Commands (`clEnqueue*`) are pushed to a per-queue worker thread which
//! executes them in submission order, honouring per-command wait lists, and
//! completes their events.  Every completed event carries the *modelled*
//! duration of its command (derived from the device's compute and bus
//! models) so the dOpenCL layer and the figure harnesses can account
//! simulated time without depending on wall-clock speed of the machine
//! running the reproduction.

use crate::buffer::Buffer;
use crate::context::Context;
use crate::device::Device;
use crate::error::{ClError, Result};
use crate::event::{CommandType, Event, EventStatus};
use crate::kernel::Kernel;
use crossbeam_channel::{unbounded, Sender};
use oclc::NdRange;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

static NEXT_QUEUE_ID: AtomicU64 = AtomicU64::new(1);

/// Properties of a command queue (`CL_QUEUE_PROPERTIES`), reduced to the
/// flags relevant here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueProperties {
    /// `CL_QUEUE_PROFILING_ENABLE`: record modelled durations on events.
    /// Always honoured; kept for API fidelity.
    pub profiling: bool,
    /// `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE`: accepted but executed
    /// in-order (allowed by the OpenCL specification).
    pub out_of_order: bool,
}

enum Command {
    Write {
        buffer: Arc<Buffer>,
        offset: usize,
        data: Vec<u8>,
        wait_list: Vec<Arc<Event>>,
        event: Arc<Event>,
    },
    Read {
        buffer: Arc<Buffer>,
        offset: usize,
        len: usize,
        wait_list: Vec<Arc<Event>>,
        event: Arc<Event>,
    },
    Copy {
        src: Arc<Buffer>,
        dst: Arc<Buffer>,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
        wait_list: Vec<Arc<Event>>,
        event: Arc<Event>,
    },
    NdRange {
        kernel: Arc<Kernel>,
        range: NdRange,
        wait_list: Vec<Arc<Event>>,
        event: Arc<Event>,
    },
    Marker {
        wait_list: Vec<Arc<Event>>,
        event: Arc<Event>,
    },
    Shutdown,
}

/// An in-order command queue (`cl_command_queue`).
pub struct CommandQueue {
    id: u64,
    device: Arc<Device>,
    context: Arc<Context>,
    properties: QueueProperties,
    tx: Sender<Command>,
    depth: Arc<AtomicUsize>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandQueue")
            .field("id", &self.id)
            .field("device", &self.device.name())
            .finish()
    }
}

impl CommandQueue {
    /// `clCreateCommandQueue`.
    pub fn new(
        context: Arc<Context>,
        device: Arc<Device>,
        properties: QueueProperties,
    ) -> Result<Arc<CommandQueue>> {
        if !context.contains_device(&device) {
            return Err(ClError::InvalidContext(format!(
                "device '{}' is not part of the context",
                device.name()
            )));
        }
        let (tx, rx) = unbounded::<Command>();
        let depth = Arc::new(AtomicUsize::new(0));
        let worker_device = Arc::clone(&device);
        let worker_depth = Arc::clone(&depth);
        let worker = std::thread::Builder::new()
            .name(format!("vocl-queue-{}", device.name()))
            .spawn(move || {
                while let Ok(command) = rx.recv() {
                    match command {
                        Command::Shutdown => break,
                        other => {
                            worker_depth.fetch_sub(1, Ordering::AcqRel);
                            execute_command(&worker_device, other);
                        }
                    }
                }
            })
            .map_err(|e| ClError::OutOfResources(format!("cannot spawn queue worker: {e}")))?;
        Ok(Arc::new(CommandQueue {
            id: NEXT_QUEUE_ID.fetch_add(1, Ordering::Relaxed),
            device,
            context,
            properties,
            tx,
            depth,
            worker: Mutex::new(Some(worker)),
        }))
    }

    /// Unique queue id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The device this queue feeds.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The owning context.
    pub fn context(&self) -> &Arc<Context> {
        &self.context
    }

    /// The queue properties it was created with.
    pub fn properties(&self) -> QueueProperties {
        self.properties
    }

    fn submit(&self, command: Command, event: &Arc<Event>) -> Result<Arc<Event>> {
        event.set_status(EventStatus::Submitted);
        self.depth.fetch_add(1, Ordering::AcqRel);
        if self.tx.send(command).is_err() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(ClError::QueueShutDown);
        }
        Ok(Arc::clone(event))
    }

    /// `clEnqueueWriteBuffer` (non-blocking; the returned event completes
    /// when the data has been copied to the buffer).
    pub fn enqueue_write_buffer(
        &self,
        buffer: &Arc<Buffer>,
        offset: usize,
        data: Vec<u8>,
        wait_list: Vec<Arc<Event>>,
    ) -> Result<Arc<Event>> {
        let event = Event::new(CommandType::WriteBuffer);
        self.submit(
            Command::Write {
                buffer: Arc::clone(buffer),
                offset,
                data,
                wait_list,
                event: Arc::clone(&event),
            },
            &event,
        )
    }

    /// `clEnqueueReadBuffer` (non-blocking; the data is available from
    /// [`Event::take_result`] once the event completes).
    pub fn enqueue_read_buffer(
        &self,
        buffer: &Arc<Buffer>,
        offset: usize,
        len: usize,
        wait_list: Vec<Arc<Event>>,
    ) -> Result<Arc<Event>> {
        let event = Event::new(CommandType::ReadBuffer);
        self.submit(
            Command::Read {
                buffer: Arc::clone(buffer),
                offset,
                len,
                wait_list,
                event: Arc::clone(&event),
            },
            &event,
        )
    }

    /// Blocking read helper: enqueue, wait, return the data.
    pub fn read_buffer_blocking(
        &self,
        buffer: &Arc<Buffer>,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>> {
        let event = self.enqueue_read_buffer(buffer, offset, len, Vec::new())?;
        event.wait()?;
        event
            .take_result()
            .ok_or_else(|| ClError::InvalidOperation("read event carried no data".into()))
    }

    /// `clEnqueueCopyBuffer`.
    pub fn enqueue_copy_buffer(
        &self,
        src: &Arc<Buffer>,
        dst: &Arc<Buffer>,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
        wait_list: Vec<Arc<Event>>,
    ) -> Result<Arc<Event>> {
        let event = Event::new(CommandType::CopyBuffer);
        self.submit(
            Command::Copy {
                src: Arc::clone(src),
                dst: Arc::clone(dst),
                src_offset,
                dst_offset,
                len,
                wait_list,
                event: Arc::clone(&event),
            },
            &event,
        )
    }

    /// `clEnqueueNDRangeKernel`.
    pub fn enqueue_nd_range_kernel(
        &self,
        kernel: &Arc<Kernel>,
        range: NdRange,
        wait_list: Vec<Arc<Event>>,
    ) -> Result<Arc<Event>> {
        let event = Event::new(CommandType::NdRangeKernel);
        self.submit(
            Command::NdRange {
                kernel: Arc::clone(kernel),
                range,
                wait_list,
                event: Arc::clone(&event),
            },
            &event,
        )
    }

    /// `clEnqueueMarkerWithWaitList`.
    pub fn enqueue_marker(&self, wait_list: Vec<Arc<Event>>) -> Result<Arc<Event>> {
        let event = Event::new(CommandType::Marker);
        self.submit(Command::Marker { wait_list, event: Arc::clone(&event) }, &event)
    }

    /// `clFlush` (a no-op: commands are handed to the worker immediately).
    ///
    /// Client-side batching lives a layer above: the dOpenCL client driver
    /// accumulates commands and ships them as one `EnqueueBatch` request;
    /// by the time the daemon replays them here they are already "flushed"
    /// in the OpenCL sense and only queue-depth remains.
    pub fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Number of commands handed to the queue but not yet picked up by the
    /// worker thread (a lower bound on outstanding work: the command the
    /// worker is currently executing or blocking on is not counted).
    pub fn pending_commands(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// `clFinish`: block until every previously enqueued command completes.
    pub fn finish(&self) -> Result<()> {
        let marker = self.enqueue_marker(Vec::new())?;
        marker.wait()
    }
}

impl Drop for CommandQueue {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

fn wait_for_list(wait_list: &[Arc<Event>]) -> std::result::Result<(), i32> {
    for e in wait_list {
        match e.wait() {
            Ok(()) => {}
            Err(_) => return Err(EventStatus::Error(-14).code()),
        }
    }
    Ok(())
}

fn execute_command(device: &Arc<Device>, command: Command) {
    match command {
        Command::Shutdown => {}
        Command::Write { buffer, offset, data, wait_list, event } => {
            if let Err(code) = wait_for_list(&wait_list) {
                event.set_error(code);
                return;
            }
            event.set_status(EventStatus::Running);
            let bytes = data.len() as u64;
            match buffer.write(offset, &data) {
                Ok(()) => {
                    event.set_modeled(device.profile().bus.write_time(bytes));
                    event.set_complete();
                }
                Err(e) => event.set_error(e.code()),
            }
        }
        Command::Read { buffer, offset, len, wait_list, event } => {
            if let Err(code) = wait_for_list(&wait_list) {
                event.set_error(code);
                return;
            }
            event.set_status(EventStatus::Running);
            match buffer.read(offset, len) {
                Ok(data) => {
                    event.set_modeled(device.profile().bus.read_time(len as u64));
                    event.set_result(data);
                    event.set_complete();
                }
                Err(e) => event.set_error(e.code()),
            }
        }
        Command::Copy { src, dst, src_offset, dst_offset, len, wait_list, event } => {
            if let Err(code) = wait_for_list(&wait_list) {
                event.set_error(code);
                return;
            }
            event.set_status(EventStatus::Running);
            let result = src.read(src_offset, len).and_then(|data| dst.write(dst_offset, &data));
            match result {
                Ok(()) => {
                    // A device-internal copy moves data once over the bus.
                    event.set_modeled(device.profile().bus.write_time(len as u64));
                    event.set_complete();
                }
                Err(e) => event.set_error(e.code()),
            }
        }
        Command::NdRange { kernel, range, wait_list, event } => {
            if let Err(code) = wait_for_list(&wait_list) {
                event.set_error(code);
                return;
            }
            event.set_status(EventStatus::Running);
            match kernel.execute(&range) {
                Ok((counters, interpreted)) => {
                    let compute = &device.profile().compute;
                    let modeled: Duration = if interpreted {
                        compute.interp_time(counters.steps)
                    } else {
                        compute.native_time(counters.ops as f64)
                    };
                    event.set_counters(counters);
                    event.set_modeled(modeled);
                    event.set_complete();
                }
                Err(e) => event.set_error(e.code()),
            }
        }
        Command::Marker { wait_list, event } => {
            if let Err(code) = wait_for_list(&wait_list) {
                event.set_error(code);
                return;
            }
            event.set_complete();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::device::DeviceType;
    use crate::kernel::KernelArg;
    use crate::profile::DeviceProfile;
    use crate::program::Program;

    fn setup() -> (Arc<Context>, Arc<Device>, Arc<CommandQueue>) {
        let device = Device::new(DeviceType::Cpu, DeviceProfile::test_device("q"));
        let context = Context::new(vec![Arc::clone(&device)]).unwrap();
        let queue = CommandQueue::new(
            Arc::clone(&context),
            Arc::clone(&device),
            QueueProperties::default(),
        )
        .unwrap();
        (context, device, queue)
    }

    #[test]
    fn queue_requires_device_in_context() {
        let device = Device::new(DeviceType::Cpu, DeviceProfile::test_device("a"));
        let other = Device::new(DeviceType::Cpu, DeviceProfile::test_device("b"));
        let context = Context::new(vec![device]).unwrap();
        assert!(CommandQueue::new(context, other, QueueProperties::default()).is_err());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 8, MemFlags::READ_WRITE, None).unwrap();
        let data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let w = queue.enqueue_write_buffer(&buffer, 0, data.clone(), Vec::new()).unwrap();
        w.wait().unwrap();
        assert!(w.modeled_duration() > Duration::ZERO);
        let back = queue.read_buffer_blocking(&buffer, 0, 8).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn kernel_launch_completes_and_reports_modeled_time() {
        let (context, _, queue) = setup();
        let program = Program::with_source(
            Arc::clone(&context),
            "__kernel void inc(__global int* a) { size_t i = get_global_id(0); a[i] = a[i] + 1; }",
        );
        program.build().unwrap();
        let kernel = program.create_kernel("inc").unwrap();
        let buffer = Buffer::new(Arc::clone(&context), 16, MemFlags::READ_WRITE, None).unwrap();
        kernel.set_arg(0, KernelArg::Buffer(Arc::clone(&buffer))).unwrap();
        let e = queue.enqueue_nd_range_kernel(&kernel, NdRange::linear(4), Vec::new()).unwrap();
        e.wait().unwrap();
        assert!(e.modeled_duration() > Duration::ZERO);
        assert_eq!(e.counters().unwrap().work_items, 4);
        let out = queue.read_buffer_blocking(&buffer, 0, 16).unwrap();
        assert!(out.chunks_exact(4).all(|c| i32::from_le_bytes(c.try_into().unwrap()) == 1));
    }

    #[test]
    fn commands_execute_in_order() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 4, MemFlags::READ_WRITE, None).unwrap();
        // Three writes in a row; the last one must win.
        for v in 1u8..=3 {
            queue.enqueue_write_buffer(&buffer, 0, vec![v, v, v, v], Vec::new()).unwrap();
        }
        queue.finish().unwrap();
        assert_eq!(buffer.read(0, 4).unwrap(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn wait_list_defers_execution_until_user_event_completes() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 4, MemFlags::READ_WRITE, None).unwrap();
        let gate = Event::user();
        let write = queue
            .enqueue_write_buffer(&buffer, 0, vec![9, 9, 9, 9], vec![Arc::clone(&gate)])
            .unwrap();
        assert!(!write.wait_timeout(Duration::from_millis(50)).unwrap());
        gate.set_complete();
        write.wait().unwrap();
        assert_eq!(buffer.read(0, 4).unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn failed_wait_list_propagates_error() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 4, MemFlags::READ_WRITE, None).unwrap();
        let gate = Event::user();
        gate.set_error(-5);
        let write = queue.enqueue_write_buffer(&buffer, 0, vec![1, 1, 1, 1], vec![gate]).unwrap();
        assert!(write.wait().is_err());
    }

    #[test]
    fn out_of_bounds_write_fails_the_event() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 4, MemFlags::READ_WRITE, None).unwrap();
        let e = queue.enqueue_write_buffer(&buffer, 2, vec![0; 4], Vec::new()).unwrap();
        assert!(e.wait().is_err());
    }

    #[test]
    fn copy_buffer_moves_data() {
        let (context, _, queue) = setup();
        let src = Buffer::new(
            Arc::clone(&context),
            8,
            MemFlags::READ_WRITE,
            Some(&[1, 2, 3, 4, 5, 6, 7, 8]),
        )
        .unwrap();
        let dst = Buffer::new(Arc::clone(&context), 8, MemFlags::READ_WRITE, None).unwrap();
        let e = queue.enqueue_copy_buffer(&src, &dst, 4, 0, 4, Vec::new()).unwrap();
        e.wait().unwrap();
        assert_eq!(dst.read(0, 4).unwrap(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn finish_drains_the_queue() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 1024, MemFlags::READ_WRITE, None).unwrap();
        for _ in 0..50 {
            queue.enqueue_write_buffer(&buffer, 0, vec![7u8; 1024], Vec::new()).unwrap();
        }
        queue.finish().unwrap();
        assert_eq!(buffer.read(0, 1).unwrap(), vec![7]);
    }

    #[test]
    fn pending_commands_tracks_queue_depth() {
        let (context, _, queue) = setup();
        let buffer = Buffer::new(Arc::clone(&context), 4, MemFlags::READ_WRITE, None).unwrap();
        let gate = Event::user();
        // The gated write blocks the worker; everything behind it piles up.
        queue.enqueue_write_buffer(&buffer, 0, vec![1; 4], vec![Arc::clone(&gate)]).unwrap();
        queue.enqueue_write_buffer(&buffer, 0, vec![2; 4], Vec::new()).unwrap();
        queue.enqueue_write_buffer(&buffer, 0, vec![3; 4], Vec::new()).unwrap();
        // The worker may or may not have popped the gated write yet.
        let depth = queue.pending_commands();
        assert!((2..=3).contains(&depth), "queue depth {depth}");
        gate.set_complete();
        queue.finish().unwrap();
        assert_eq!(queue.pending_commands(), 0);
    }
}
