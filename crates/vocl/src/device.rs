//! OpenCL devices.

use crate::profile::DeviceProfile;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

/// `CL_DEVICE_TYPE_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// `CL_DEVICE_TYPE_CPU`
    Cpu,
    /// `CL_DEVICE_TYPE_GPU`
    Gpu,
    /// `CL_DEVICE_TYPE_ACCELERATOR`
    Accelerator,
}

impl DeviceType {
    /// Parse the attribute spelling used in device-manager configuration
    /// files (`CPU`, `GPU`, `ACCELERATOR`).
    pub fn from_attribute(s: &str) -> Option<DeviceType> {
        match s.to_ascii_uppercase().as_str() {
            "CPU" => Some(DeviceType::Cpu),
            "GPU" => Some(DeviceType::Gpu),
            "ACCELERATOR" => Some(DeviceType::Accelerator),
            _ => None,
        }
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceType::Cpu => f.write_str("CPU"),
            DeviceType::Gpu => f.write_str("GPU"),
            DeviceType::Accelerator => f.write_str("ACCELERATOR"),
        }
    }
}

/// Device information parameters (`clGetDeviceInfo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceInfoParam {
    /// `CL_DEVICE_NAME`
    Name,
    /// `CL_DEVICE_VENDOR`
    Vendor,
    /// `CL_DEVICE_TYPE`
    Type,
    /// `CL_DEVICE_MAX_COMPUTE_UNITS`
    MaxComputeUnits,
    /// `CL_DEVICE_MAX_CLOCK_FREQUENCY`
    MaxClockFrequency,
    /// `CL_DEVICE_GLOBAL_MEM_SIZE`
    GlobalMemSize,
    /// `CL_DEVICE_MAX_MEM_ALLOC_SIZE`
    MaxMemAllocSize,
}

impl DeviceInfoParam {
    /// Parse the attribute spelling used in device-manager configuration
    /// files (e.g. `MAX_COMPUTE_UNITS`).
    pub fn from_attribute(s: &str) -> Option<DeviceInfoParam> {
        match s.to_ascii_uppercase().as_str() {
            "NAME" => Some(DeviceInfoParam::Name),
            "VENDOR" => Some(DeviceInfoParam::Vendor),
            "TYPE" => Some(DeviceInfoParam::Type),
            "MAX_COMPUTE_UNITS" => Some(DeviceInfoParam::MaxComputeUnits),
            "MAX_CLOCK_FREQUENCY" => Some(DeviceInfoParam::MaxClockFrequency),
            "GLOBAL_MEM_SIZE" => Some(DeviceInfoParam::GlobalMemSize),
            "MAX_MEM_ALLOC_SIZE" => Some(DeviceInfoParam::MaxMemAllocSize),
            _ => None,
        }
    }
}

/// A device information value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceInfoValue {
    /// A string value.
    Str(String),
    /// An unsigned integer value.
    UInt(u64),
    /// A device type value.
    Type(DeviceType),
}

/// An OpenCL device of the virtual runtime.
#[derive(Debug)]
pub struct Device {
    id: u64,
    device_type: DeviceType,
    profile: DeviceProfile,
}

impl Device {
    /// Create a device of `device_type` with the given performance profile.
    pub fn new(device_type: DeviceType, profile: DeviceProfile) -> Arc<Device> {
        Arc::new(Device {
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
            device_type,
            profile,
        })
    }

    /// Unique device id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `CL_DEVICE_TYPE`.
    pub fn device_type(&self) -> DeviceType {
        self.device_type
    }

    /// `CL_DEVICE_NAME`.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// `CL_DEVICE_VENDOR`.
    pub fn vendor(&self) -> &str {
        &self.profile.vendor
    }

    /// The full performance profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// `clGetDeviceInfo`.
    pub fn info(&self, param: DeviceInfoParam) -> DeviceInfoValue {
        match param {
            DeviceInfoParam::Name => DeviceInfoValue::Str(self.profile.name.clone()),
            DeviceInfoParam::Vendor => DeviceInfoValue::Str(self.profile.vendor.clone()),
            DeviceInfoParam::Type => DeviceInfoValue::Type(self.device_type),
            DeviceInfoParam::MaxComputeUnits => {
                DeviceInfoValue::UInt(self.profile.compute_units as u64)
            }
            DeviceInfoParam::MaxClockFrequency => {
                DeviceInfoValue::UInt(self.profile.clock_mhz as u64)
            }
            DeviceInfoParam::GlobalMemSize => DeviceInfoValue::UInt(self.profile.global_mem_bytes),
            DeviceInfoParam::MaxMemAllocSize => DeviceInfoValue::UInt(self.profile.max_alloc_bytes),
        }
    }

    /// Check whether the device satisfies a device-manager attribute
    /// constraint, e.g. `("TYPE", "GPU")` or `("MAX_COMPUTE_UNITS", "2")`.
    ///
    /// Numeric attributes are treated as *minimum* requirements, mirroring
    /// the paper's example of requesting "Intel dual-core CPUs" by
    /// `MAX_COMPUTE_UNITS >= 2`.
    pub fn satisfies_attribute(&self, name: &str, value: &str) -> bool {
        let Some(param) = DeviceInfoParam::from_attribute(name) else {
            return false;
        };
        match self.info(param) {
            DeviceInfoValue::Str(s) => s.to_ascii_lowercase().contains(&value.to_ascii_lowercase()),
            DeviceInfoValue::Type(t) => {
                DeviceType::from_attribute(value).map(|want| want == t).unwrap_or(false)
            }
            DeviceInfoValue::UInt(v) => {
                value.trim().parse::<u64>().map(|want| v >= want).unwrap_or(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_are_unique() {
        let a = Device::new(DeviceType::Cpu, DeviceProfile::test_device("a"));
        let b = Device::new(DeviceType::Gpu, DeviceProfile::test_device("b"));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn info_queries() {
        let d = Device::new(DeviceType::Gpu, DeviceProfile::gpu_tesla_s1070_unit());
        assert_eq!(d.info(DeviceInfoParam::Type), DeviceInfoValue::Type(DeviceType::Gpu));
        assert_eq!(d.info(DeviceInfoParam::MaxComputeUnits), DeviceInfoValue::UInt(30));
        match d.info(DeviceInfoParam::Name) {
            DeviceInfoValue::Str(s) => assert!(s.contains("Tesla")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_matching() {
        let d = Device::new(DeviceType::Cpu, DeviceProfile::cpu_dual_westmere());
        assert!(d.satisfies_attribute("TYPE", "CPU"));
        assert!(!d.satisfies_attribute("TYPE", "GPU"));
        assert!(d.satisfies_attribute("VENDOR", "intel"));
        assert!(d.satisfies_attribute("MAX_COMPUTE_UNITS", "2"));
        assert!(!d.satisfies_attribute("MAX_COMPUTE_UNITS", "100"));
        assert!(!d.satisfies_attribute("NOT_AN_ATTRIBUTE", "x"));
        assert!(!d.satisfies_attribute("TYPE", "not-a-type"));
        assert!(!d.satisfies_attribute("MAX_COMPUTE_UNITS", "not-a-number"));
    }

    #[test]
    fn device_type_parsing() {
        assert_eq!(DeviceType::from_attribute("gpu"), Some(DeviceType::Gpu));
        assert_eq!(DeviceType::from_attribute("CPU"), Some(DeviceType::Cpu));
        assert_eq!(DeviceType::from_attribute("fpga"), None);
        assert_eq!(DeviceType::Gpu.to_string(), "GPU");
    }
}
