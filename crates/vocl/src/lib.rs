//! # vocl — a virtual OpenCL runtime
//!
//! dOpenCL is a *meta-implementation* of OpenCL: the daemon on every server
//! forwards the client's API calls to the server's **native OpenCL
//! implementation** (AMD APP, NVIDIA CUDA, ...).  This crate is that native
//! implementation for the reproduction: a from-scratch OpenCL-style runtime
//! exposing the same object model —
//!
//! * [`Platform`] → [`Device`] (with performance profiles standing in for
//!   the paper's hardware),
//! * [`Context`], [`Buffer`] memory objects, [`Program`]s built from OpenCL C
//!   source (via the `oclc` interpreter) or from registered *built-in*
//!   native kernels, [`Kernel`]s with `clSetKernelArg`-style argument
//!   binding,
//! * in-order [`CommandQueue`]s with one worker thread per queue,
//! * [`Event`]s with statuses, wait lists, completion callbacks and user
//!   events (the building blocks of dOpenCL's consistency protocols).
//!
//! Every completed event reports a **modelled duration** derived from the
//! device's [`profile::ComputeModel`] and [`profile::BusModel`], so that the
//! evaluation harnesses reproduce the *shape* of the paper's measurements on
//! any machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod context;
pub mod device;
pub mod error;
pub mod event;
pub mod kernel;
pub mod platform;
pub mod profile;
pub mod program;
pub mod queue;

pub use buffer::{Buffer, MemFlags};
pub use context::Context;
pub use device::{Device, DeviceInfoParam, DeviceInfoValue, DeviceType};
pub use error::{ClError, Result};
pub use event::{wait_for_events, CommandType, Event, EventStatus};
pub use kernel::{Kernel, KernelArg};
pub use platform::Platform;
pub use profile::{BusModel, ComputeModel, DeviceProfile};
pub use program::{
    built_in_kernel, built_in_kernel_names, register_built_in_kernel, BuiltInKernelFn, Program,
};
pub use queue::{CommandQueue, QueueProperties};

// Re-export the kernel-language types that appear in this crate's public API.
pub use oclc::{BufferBinding, KernelArgValue, NdRange, Value, WorkItemCounters};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// End-to-end smoke test exercising the whole runtime stack the way an
    /// OpenCL application would.
    #[test]
    fn end_to_end_saxpy() {
        let platform = Platform::test_platform(1);
        let device = Arc::clone(&platform.devices()[0]);
        let context = Context::new(vec![Arc::clone(&device)]).unwrap();
        let queue =
            CommandQueue::new(Arc::clone(&context), device, QueueProperties::default()).unwrap();

        let n = 256usize;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let x_bytes: Vec<u8> = x.iter().flat_map(|v| v.to_le_bytes()).collect();
        let y_bytes: Vec<u8> = y.iter().flat_map(|v| v.to_le_bytes()).collect();

        let bx = Buffer::new(Arc::clone(&context), n * 4, MemFlags::READ_ONLY, None).unwrap();
        let by = Buffer::new(Arc::clone(&context), n * 4, MemFlags::READ_WRITE, None).unwrap();
        queue.enqueue_write_buffer(&bx, 0, x_bytes, Vec::new()).unwrap();
        queue.enqueue_write_buffer(&by, 0, y_bytes, Vec::new()).unwrap();

        let program = Program::with_source(
            Arc::clone(&context),
            r#"
            __kernel void saxpy(float a, __global const float* x, __global float* y, uint n) {
                size_t i = get_global_id(0);
                if (i < n) {
                    y[i] = a * x[i] + y[i];
                }
            }
            "#,
        );
        program.build().unwrap();
        let kernel = program.create_kernel("saxpy").unwrap();
        kernel.set_arg(0, KernelArg::Scalar(Value::float(2.0))).unwrap();
        kernel.set_arg(1, KernelArg::Buffer(Arc::clone(&bx))).unwrap();
        kernel.set_arg(2, KernelArg::Buffer(Arc::clone(&by))).unwrap();
        kernel.set_arg(3, KernelArg::Scalar(Value::uint(n as u64))).unwrap();

        let launch =
            queue.enqueue_nd_range_kernel(&kernel, NdRange::linear(n), Vec::new()).unwrap();
        launch.wait().unwrap();

        let out = queue.read_buffer_blocking(&by, 0, n * 4).unwrap();
        for (i, chunk) in out.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(v, 2.0 * x[i] + y[i]);
        }
    }
}
