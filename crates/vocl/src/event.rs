//! Events: command completion, wait lists, callbacks, user events.
//!
//! Events are central to the dOpenCL consistency protocol (Section III-D of
//! the paper): the daemon registers a completion callback on the *original*
//! event (`clSetEventCallback`) and the client completes *user events* on the
//! other servers when the notification arrives.

use crate::error::{ClError, Result};
use oclc::WorkItemCounters;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(1);

/// The command a event belongs to (`CL_EVENT_COMMAND_TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandType {
    /// `CL_COMMAND_NDRANGE_KERNEL`
    NdRangeKernel,
    /// `CL_COMMAND_READ_BUFFER`
    ReadBuffer,
    /// `CL_COMMAND_WRITE_BUFFER`
    WriteBuffer,
    /// `CL_COMMAND_COPY_BUFFER`
    CopyBuffer,
    /// `CL_COMMAND_MARKER`
    Marker,
    /// `CL_COMMAND_USER`
    User,
}

/// Execution status of the command associated with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// `CL_QUEUED`
    Queued,
    /// `CL_SUBMITTED`
    Submitted,
    /// `CL_RUNNING`
    Running,
    /// `CL_COMPLETE`
    Complete,
    /// A negative error code.
    Error(i32),
}

impl EventStatus {
    /// True for `Complete` or `Error` — the terminal states.
    pub fn is_terminal(self) -> bool {
        matches!(self, EventStatus::Complete | EventStatus::Error(_))
    }

    /// True only for `Error`: the command reached a terminal state by
    /// failing.
    pub fn is_error(self) -> bool {
        matches!(self, EventStatus::Error(_))
    }

    /// The numeric value used by the OpenCL API.
    pub fn code(self) -> i32 {
        match self {
            EventStatus::Queued => 3,
            EventStatus::Submitted => 2,
            EventStatus::Running => 1,
            EventStatus::Complete => 0,
            EventStatus::Error(code) => code,
        }
    }
}

/// Completion callback type (`clSetEventCallback` with `CL_COMPLETE`).
pub type EventCallback = Box<dyn Fn(EventStatus) + Send + Sync>;

struct EventState {
    status: EventStatus,
    modeled: Duration,
    counters: Option<WorkItemCounters>,
    result: Option<Vec<u8>>,
    callbacks: Vec<EventCallback>,
}

/// An OpenCL event (`cl_event`).
pub struct Event {
    id: u64,
    command_type: CommandType,
    state: Mutex<EventState>,
    cond: Condvar,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id)
            .field("command_type", &self.command_type)
            .field("status", &self.status())
            .finish()
    }
}

impl Event {
    /// Create an event in the `Queued` state for a command of `command_type`.
    pub fn new(command_type: CommandType) -> Arc<Event> {
        Arc::new(Event {
            id: NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed),
            command_type,
            state: Mutex::new(EventState {
                status: EventStatus::Queued,
                modeled: Duration::ZERO,
                counters: None,
                result: None,
                callbacks: Vec::new(),
            }),
            cond: Condvar::new(),
        })
    }

    /// `clCreateUserEvent`: a user event starts in the `Submitted` state and
    /// is completed explicitly via [`Event::set_complete`] /
    /// [`Event::set_error`].
    pub fn user() -> Arc<Event> {
        let e = Event::new(CommandType::User);
        e.set_status(EventStatus::Submitted);
        e
    }

    /// Unique event id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `CL_EVENT_COMMAND_TYPE`.
    pub fn command_type(&self) -> CommandType {
        self.command_type
    }

    /// Current execution status.
    pub fn status(&self) -> EventStatus {
        self.state.lock().status
    }

    /// Modelled duration of the command (available after completion).
    pub fn modeled_duration(&self) -> Duration {
        self.state.lock().modeled
    }

    /// Work-item counters of a kernel command (available after completion).
    pub fn counters(&self) -> Option<WorkItemCounters> {
        self.state.lock().counters
    }

    /// Attach the modelled duration (set by the executing queue).
    pub fn set_modeled(&self, d: Duration) {
        self.state.lock().modeled = d;
    }

    /// Attach kernel counters (set by the executing queue).
    pub fn set_counters(&self, counters: WorkItemCounters) {
        self.state.lock().counters = Some(counters);
    }

    /// Attach a result payload (e.g. the data produced by a buffer read).
    pub fn set_result(&self, data: Vec<u8>) {
        self.state.lock().result = Some(data);
    }

    /// Take the result payload, if any.
    pub fn take_result(&self) -> Option<Vec<u8>> {
        self.state.lock().result.take()
    }

    /// Update the execution status; terminal states wake waiters and fire
    /// callbacks.
    pub fn set_status(&self, status: EventStatus) {
        let callbacks = {
            let mut state = self.state.lock();
            if state.status.is_terminal() {
                // Terminal states are sticky (matches user-event semantics).
                return;
            }
            state.status = status;
            if status.is_terminal() {
                self.cond.notify_all();
                std::mem::take(&mut state.callbacks)
            } else {
                Vec::new()
            }
        };
        for cb in callbacks {
            cb(status);
        }
    }

    /// Mark the command complete (`clSetUserEventStatus(CL_COMPLETE)` for
    /// user events).
    pub fn set_complete(&self) {
        self.set_status(EventStatus::Complete);
    }

    /// Mark the command failed with an error code.
    pub fn set_error(&self, code: i32) {
        self.set_status(EventStatus::Error(code));
    }

    /// `clSetEventCallback(CL_COMPLETE)`: run `callback` once the event
    /// reaches a terminal state.  If it already has, the callback runs
    /// immediately on the calling thread.
    pub fn on_complete(&self, callback: EventCallback) {
        let fire_now = {
            let mut state = self.state.lock();
            if state.status.is_terminal() {
                Some(state.status)
            } else {
                state.callbacks.push(callback);
                return;
            }
        };
        if let Some(status) = fire_now {
            callback(status);
        }
    }

    /// `clWaitForEvents` for a single event: block until terminal, returning
    /// an error if the command failed.
    pub fn wait(&self) -> Result<()> {
        let mut state = self.state.lock();
        while !state.status.is_terminal() {
            self.cond.wait(&mut state);
        }
        match state.status {
            EventStatus::Complete => Ok(()),
            EventStatus::Error(code) => {
                Err(ClError::ExecutionFailure(format!("command failed with status {code}")))
            }
            _ => unreachable!("terminal check above"),
        }
    }

    /// Wait with a timeout; `Ok(false)` means the timeout expired.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<bool> {
        let mut state = self.state.lock();
        let deadline = std::time::Instant::now() + timeout;
        while !state.status.is_terminal() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.cond.wait_for(&mut state, deadline - now);
        }
        match state.status {
            EventStatus::Complete => Ok(true),
            EventStatus::Error(code) => {
                Err(ClError::ExecutionFailure(format!("command failed with status {code}")))
            }
            _ => unreachable!(),
        }
    }
}

/// `clWaitForEvents`: wait for every event in `events`.
pub fn wait_for_events(events: &[Arc<Event>]) -> Result<()> {
    for e in events {
        e.wait()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifecycle_and_wait() {
        let e = Event::new(CommandType::WriteBuffer);
        assert_eq!(e.status(), EventStatus::Queued);
        let e2 = Arc::clone(&e);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            e2.set_status(EventStatus::Running);
            e2.set_modeled(Duration::from_millis(5));
            e2.set_complete();
        });
        e.wait().unwrap();
        assert_eq!(e.status(), EventStatus::Complete);
        assert_eq!(e.modeled_duration(), Duration::from_millis(5));
        handle.join().unwrap();
    }

    #[test]
    fn error_status_propagates_through_wait() {
        let e = Event::new(CommandType::NdRangeKernel);
        e.set_error(-14);
        assert!(e.wait().is_err());
        assert_eq!(e.status(), EventStatus::Error(-14));
    }

    #[test]
    fn error_is_the_only_failing_terminal_state() {
        assert!(EventStatus::Error(-14).is_error());
        assert!(EventStatus::Error(-14).is_terminal());
        assert!(!EventStatus::Complete.is_error());
        assert!(!EventStatus::Running.is_error());
    }

    #[test]
    fn terminal_status_is_sticky() {
        let e = Event::user();
        e.set_complete();
        e.set_error(-5);
        assert_eq!(e.status(), EventStatus::Complete);
    }

    #[test]
    fn callbacks_fire_on_completion_and_immediately_if_late() {
        let counter = Arc::new(AtomicUsize::new(0));
        let e = Event::user();
        let c1 = Arc::clone(&counter);
        e.on_complete(Box::new(move |_| {
            c1.fetch_add(1, Ordering::SeqCst);
        }));
        e.set_complete();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        // Registering after completion fires immediately.
        let c2 = Arc::clone(&counter);
        e.on_complete(Box::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wait_timeout_expires_without_completion() {
        let e = Event::user();
        assert!(!e.wait_timeout(Duration::from_millis(20)).unwrap());
        e.set_complete();
        assert!(e.wait_timeout(Duration::from_millis(20)).unwrap());
    }

    #[test]
    fn result_payload_roundtrip() {
        let e = Event::new(CommandType::ReadBuffer);
        e.set_result(vec![1, 2, 3]);
        assert_eq!(e.take_result(), Some(vec![1, 2, 3]));
        assert_eq!(e.take_result(), None);
    }

    #[test]
    fn wait_for_events_waits_for_all() {
        let a = Event::user();
        let b = Event::user();
        a.set_complete();
        b.set_complete();
        wait_for_events(&[a, b]).unwrap();
    }

    #[test]
    fn user_event_starts_submitted() {
        assert_eq!(Event::user().status(), EventStatus::Submitted);
        assert_eq!(Event::user().command_type(), CommandType::User);
    }
}
