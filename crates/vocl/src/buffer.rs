//! Memory objects (buffers).

use crate::context::Context;
use crate::error::{ClError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// Memory flags (`CL_MEM_*`), simplified to the combinations dOpenCL needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemFlags {
    /// Kernels may read the buffer.
    pub readable: bool,
    /// Kernels may write the buffer.
    pub writable: bool,
}

impl MemFlags {
    /// `CL_MEM_READ_WRITE`
    pub const READ_WRITE: MemFlags = MemFlags { readable: true, writable: true };
    /// `CL_MEM_READ_ONLY`
    pub const READ_ONLY: MemFlags = MemFlags { readable: true, writable: false };
    /// `CL_MEM_WRITE_ONLY`
    pub const WRITE_ONLY: MemFlags = MemFlags { readable: false, writable: true };
}

/// A buffer memory object (`cl_mem`).
#[derive(Debug)]
pub struct Buffer {
    id: u64,
    size: usize,
    flags: MemFlags,
    context: Arc<Context>,
    data: Mutex<Vec<u8>>,
}

impl Buffer {
    /// `clCreateBuffer`: allocate a buffer of `size` bytes, optionally
    /// initialised from `host_data` (`CL_MEM_COPY_HOST_PTR`).
    pub fn new(
        context: Arc<Context>,
        size: usize,
        flags: MemFlags,
        host_data: Option<&[u8]>,
    ) -> Result<Arc<Buffer>> {
        if size == 0 {
            return Err(ClError::InvalidValue("buffer size must be non-zero".into()));
        }
        let max_alloc =
            context.devices().iter().map(|d| d.profile().max_alloc_bytes).max().unwrap_or(u64::MAX);
        if size as u64 > max_alloc {
            return Err(ClError::MemObjectAllocationFailure(format!(
                "requested {size} bytes exceeds CL_DEVICE_MAX_MEM_ALLOC_SIZE ({max_alloc})"
            )));
        }
        let mut data = vec![0u8; size];
        if let Some(host) = host_data {
            if host.len() != size {
                return Err(ClError::InvalidValue(format!(
                    "host data is {} bytes but the buffer is {size} bytes",
                    host.len()
                )));
            }
            data.copy_from_slice(host);
        }
        Ok(Arc::new(Buffer {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            size,
            flags,
            context,
            data: Mutex::new(data),
        }))
    }

    /// Unique buffer id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Buffer size in bytes (`CL_MEM_SIZE`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The buffer's memory flags.
    pub fn flags(&self) -> MemFlags {
        self.flags
    }

    /// The owning context.
    pub fn context(&self) -> &Arc<Context> {
        &self.context
    }

    /// Copy `len` bytes starting at `offset` out of the buffer.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        let data = self.data.lock();
        let end = offset
            .checked_add(len)
            .ok_or_else(|| ClError::InvalidValue("read range overflows".into()))?;
        if end > data.len() {
            return Err(ClError::InvalidValue(format!(
                "read of {len} bytes at offset {offset} exceeds buffer size {}",
                data.len()
            )));
        }
        Ok(data[offset..end].to_vec())
    }

    /// Copy `bytes` into the buffer starting at `offset`.
    pub fn write(&self, offset: usize, bytes: &[u8]) -> Result<()> {
        let mut data = self.data.lock();
        let end = offset
            .checked_add(bytes.len())
            .ok_or_else(|| ClError::InvalidValue("write range overflows".into()))?;
        if end > data.len() {
            return Err(ClError::InvalidValue(format!(
                "write of {} bytes at offset {offset} exceeds buffer size {}",
                bytes.len(),
                data.len()
            )));
        }
        data[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Run `f` with mutable access to the whole buffer contents.
    ///
    /// Used by the kernel execution path to hand buffer memory to the
    /// interpreter or to built-in kernels without copying.
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let mut data = self.data.lock();
        f(&mut data)
    }

    /// Run `f` with shared access to the whole buffer contents.
    pub fn with_data<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.data.lock();
        f(&data)
    }

    /// Lock the underlying storage and return the guard.
    ///
    /// Used by the kernel execution path, which needs to hold several buffer
    /// locks at once to build the interpreter's buffer bindings.  Prefer
    /// [`Buffer::with_data`] / [`Buffer::with_data_mut`] elsewhere.
    pub fn lock_data(&self) -> parking_lot::MutexGuard<'_, Vec<u8>> {
        self.data.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceType};
    use crate::profile::DeviceProfile;

    fn test_context() -> Arc<Context> {
        let d = Device::new(DeviceType::Cpu, DeviceProfile::test_device("d"));
        Context::new(vec![d]).unwrap()
    }

    #[test]
    fn create_read_write() {
        let ctx = test_context();
        let buf = Buffer::new(Arc::clone(&ctx), 16, MemFlags::READ_WRITE, None).unwrap();
        assert_eq!(buf.size(), 16);
        assert_eq!(buf.read(0, 16).unwrap(), vec![0u8; 16]);
        buf.write(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(buf.read(4, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(buf.read(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn create_with_host_data() {
        let ctx = test_context();
        let buf = Buffer::new(ctx, 4, MemFlags::READ_ONLY, Some(&[9, 8, 7, 6])).unwrap();
        assert_eq!(buf.read(0, 4).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn rejects_zero_size_and_mismatched_host_data() {
        let ctx = test_context();
        assert!(Buffer::new(Arc::clone(&ctx), 0, MemFlags::READ_WRITE, None).is_err());
        assert!(Buffer::new(ctx, 8, MemFlags::READ_WRITE, Some(&[1, 2])).is_err());
    }

    #[test]
    fn rejects_allocations_beyond_device_limit() {
        let ctx = test_context();
        let max = ctx.devices()[0].profile().max_alloc_bytes as usize;
        assert!(Buffer::new(ctx, max + 1, MemFlags::READ_WRITE, None).is_err());
    }

    #[test]
    fn out_of_range_access_rejected() {
        let ctx = test_context();
        let buf = Buffer::new(ctx, 8, MemFlags::READ_WRITE, None).unwrap();
        assert!(buf.read(4, 8).is_err());
        assert!(buf.write(7, &[0, 0]).is_err());
    }

    #[test]
    fn with_data_mut_mutates_in_place() {
        let ctx = test_context();
        let buf = Buffer::new(ctx, 4, MemFlags::READ_WRITE, None).unwrap();
        buf.with_data_mut(|d| d[0] = 42);
        assert_eq!(buf.read(0, 1).unwrap(), vec![42]);
        assert_eq!(buf.with_data(|d| d.len()), 4);
    }
}
