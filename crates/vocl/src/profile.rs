//! Device performance profiles and the host↔device bus model.
//!
//! The paper's measurements are taken on specific hardware (Section V):
//!
//! * a cluster whose nodes have two hexa-core Intel Westmere X5650 CPUs,
//!   presented as **one** CPU device by the AMD APP SDK,
//! * a GPU server with an NVIDIA Tesla S1070 (4 GPUs, 4 GB each),
//! * a desktop PC with a low-end NVIDIA NVS 3100M GPU,
//! * PCI Express transfers that are strongly asymmetric on that server
//!   (reads ~15× slower than writes).
//!
//! This module replaces the hardware with explicit throughput/bandwidth
//! parameters.  The absolute values are calibrated so that the figure
//! harnesses land in the same range the paper reports; the *ratios* (which
//! determine the shape of every figure) follow directly from the paper.

use std::time::Duration;

/// Host↔device bus (PCI Express) cost model with asymmetric directions.
#[derive(Debug, Clone, PartialEq)]
pub struct BusModel {
    /// Host-to-device (write) bandwidth in bytes/second.
    pub write_bytes_per_sec: f64,
    /// Device-to-host (read) bandwidth in bytes/second.
    pub read_bytes_per_sec: f64,
    /// Fixed per-transfer latency.
    pub latency: Duration,
}

impl BusModel {
    /// The GPU server's PCI Express bus (calibrated from Figure 7: reads are
    /// about 15× slower than writes; Gigabit Ethernet is about 50× slower
    /// than a write and 4.5× slower than a read for 1 GiB transfers).
    pub fn pcie_gpu_server() -> Self {
        BusModel {
            write_bytes_per_sec: 5_400.0 * 1024.0 * 1024.0,
            read_bytes_per_sec: 360.0 * 1024.0 * 1024.0,
            latency: Duration::from_micros(20),
        }
    }

    /// A desktop-class PCI Express link (low-end GPU in the desktop PC).
    pub fn pcie_desktop() -> Self {
        BusModel {
            write_bytes_per_sec: 2_500.0 * 1024.0 * 1024.0,
            read_bytes_per_sec: 1_200.0 * 1024.0 * 1024.0,
            latency: Duration::from_micros(25),
        }
    }

    /// A CPU device: "transfers" are memcpys within host memory.
    pub fn system_memory() -> Self {
        BusModel {
            write_bytes_per_sec: 12_000.0 * 1024.0 * 1024.0,
            read_bytes_per_sec: 12_000.0 * 1024.0 * 1024.0,
            latency: Duration::from_micros(1),
        }
    }

    /// Modelled duration of a host-to-device transfer.
    pub fn write_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.write_bytes_per_sec)
    }

    /// Modelled duration of a device-to-host transfer.
    pub fn read_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.read_bytes_per_sec)
    }
}

/// Compute-throughput model of a device.
///
/// Two rates are distinguished because kernels can execute through two paths:
/// the OpenCL C interpreter (whose `steps` counter is the cost unit) and
/// built-in native kernels (which report an explicit floating-point operation
/// count).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    /// Modelled native floating-point operations per second for this device.
    pub flops: f64,
    /// Interpreter steps per second when running interpreted kernels
    /// (captures both the device speed and the interpreter overhead).
    pub interp_steps_per_sec: f64,
    /// Fixed kernel-launch overhead.
    pub launch_overhead: Duration,
}

impl ComputeModel {
    /// Modelled execution time for a native kernel that performs `flops`
    /// floating-point operations.
    pub fn native_time(&self, flops: f64) -> Duration {
        self.launch_overhead + Duration::from_secs_f64(flops / self.flops)
    }

    /// Modelled execution time for an interpreted kernel that executed
    /// `steps` interpreter steps.
    pub fn interp_time(&self, steps: u64) -> Duration {
        self.launch_overhead + Duration::from_secs_f64(steps as f64 / self.interp_steps_per_sec)
    }
}

/// A complete device profile: identity plus cost models.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name reported through `CL_DEVICE_NAME`.
    pub name: String,
    /// Vendor reported through `CL_DEVICE_VENDOR`.
    pub vendor: String,
    /// Number of compute units (`CL_DEVICE_MAX_COMPUTE_UNITS`).
    pub compute_units: u32,
    /// Clock frequency in MHz (`CL_DEVICE_MAX_CLOCK_FREQUENCY`).
    pub clock_mhz: u32,
    /// Global memory size in bytes (`CL_DEVICE_GLOBAL_MEM_SIZE`).
    pub global_mem_bytes: u64,
    /// Maximum single allocation (`CL_DEVICE_MAX_MEM_ALLOC_SIZE`).
    pub max_alloc_bytes: u64,
    /// Compute cost model.
    pub compute: ComputeModel,
    /// Host↔device transfer cost model.
    pub bus: BusModel,
}

impl DeviceProfile {
    /// The cluster node CPU device: two hexa-core Intel Westmere X5650
    /// presented as a single OpenCL CPU device by the AMD APP SDK.
    pub fn cpu_dual_westmere() -> Self {
        DeviceProfile {
            name: "Intel Xeon X5650 x2 (AMD APP)".to_string(),
            vendor: "GenuineIntel".to_string(),
            compute_units: 24,
            clock_mhz: 2660,
            global_mem_bytes: 24 * (1 << 30),
            max_alloc_bytes: 6 * (1 << 30),
            compute: ComputeModel {
                flops: 12.5e9,
                interp_steps_per_sec: 400.0e6,
                launch_overhead: Duration::from_micros(30),
            },
            bus: BusModel::system_memory(),
        }
    }

    /// One GPU of the NVIDIA Tesla S1070 in the paper's GPU server.
    pub fn gpu_tesla_s1070_unit() -> Self {
        DeviceProfile {
            name: "NVIDIA Tesla S1070 (1 of 4)".to_string(),
            vendor: "NVIDIA Corporation".to_string(),
            compute_units: 30,
            clock_mhz: 1440,
            global_mem_bytes: 4 * (1 << 30),
            max_alloc_bytes: 1 << 30,
            compute: ComputeModel {
                flops: 6.2e10,
                interp_steps_per_sec: 1.2e9,
                launch_overhead: Duration::from_micros(60),
            },
            bus: BusModel::pcie_gpu_server(),
        }
    }

    /// The desktop PC's low-end NVIDIA NVS 3100M GPU.
    pub fn gpu_nvs_3100m() -> Self {
        DeviceProfile {
            name: "NVIDIA NVS 3100M".to_string(),
            vendor: "NVIDIA Corporation".to_string(),
            compute_units: 2,
            clock_mhz: 1080,
            global_mem_bytes: 512 * (1 << 20),
            max_alloc_bytes: 128 * (1 << 20),
            compute: ComputeModel {
                flops: 4.4e9,
                interp_steps_per_sec: 1.5e8,
                launch_overhead: Duration::from_micros(40),
            },
            bus: BusModel::pcie_desktop(),
        }
    }

    /// The Intel quad-core Xeon E5520 CPU in the GPU server (host CPU; also
    /// usable as an OpenCL CPU device).
    pub fn cpu_xeon_e5520() -> Self {
        DeviceProfile {
            name: "Intel Xeon E5520".to_string(),
            vendor: "GenuineIntel".to_string(),
            compute_units: 8,
            clock_mhz: 2270,
            global_mem_bytes: 16 * (1 << 30),
            max_alloc_bytes: 4 * (1 << 30),
            compute: ComputeModel {
                flops: 2.2e9,
                interp_steps_per_sec: 2.5e8,
                launch_overhead: Duration::from_micros(20),
            },
            bus: BusModel::system_memory(),
        }
    }

    /// A generic tiny test device with fast launch and deterministic rates —
    /// used by unit tests that do not care about realistic numbers.
    pub fn test_device(name: &str) -> Self {
        DeviceProfile {
            name: name.to_string(),
            vendor: "dOpenCL reproduction".to_string(),
            compute_units: 4,
            clock_mhz: 1000,
            global_mem_bytes: 1 << 30,
            max_alloc_bytes: 1 << 28,
            compute: ComputeModel {
                flops: 1.0e9,
                interp_steps_per_sec: 1.0e9,
                launch_overhead: Duration::from_micros(1),
            },
            bus: BusModel::system_memory(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn pcie_read_is_about_15x_slower_than_write() {
        let bus = BusModel::pcie_gpu_server();
        let w = bus.write_time(1024 * MIB).as_secs_f64();
        let r = bus.read_time(1024 * MIB).as_secs_f64();
        let ratio = r / w;
        assert!((12.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn compute_model_scales_with_work() {
        let m = DeviceProfile::gpu_tesla_s1070_unit().compute;
        assert!(m.native_time(1e9) < m.native_time(1e10));
        assert!(m.interp_time(1_000) < m.interp_time(1_000_000));
    }

    #[test]
    fn tesla_is_much_faster_than_nvs_3100m() {
        let tesla = DeviceProfile::gpu_tesla_s1070_unit();
        let nvs = DeviceProfile::gpu_nvs_3100m();
        let work = 1e12;
        let t_tesla = tesla.compute.native_time(work).as_secs_f64();
        let t_nvs = nvs.compute.native_time(work).as_secs_f64();
        assert!(t_nvs / t_tesla > 5.0, "low-end GPU must be much slower");
    }

    #[test]
    fn profiles_report_plausible_info() {
        let p = DeviceProfile::cpu_dual_westmere();
        assert_eq!(p.compute_units, 24);
        assert!(p.global_mem_bytes > p.max_alloc_bytes);
        let t = DeviceProfile::test_device("t");
        assert_eq!(t.name, "t");
    }
}
