//! OpenCL platforms: a named collection of devices, as exposed by one
//! vendor implementation installed on one machine.

use crate::device::{Device, DeviceType};
use crate::profile::DeviceProfile;
use std::sync::Arc;

/// An OpenCL platform (`cl_platform_id`).
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    vendor: String,
    version: String,
    devices: Vec<Arc<Device>>,
}

impl Platform {
    /// Create a platform exposing `devices`.
    pub fn new(
        name: impl Into<String>,
        vendor: impl Into<String>,
        devices: Vec<Arc<Device>>,
    ) -> Self {
        Platform {
            name: name.into(),
            vendor: vendor.into(),
            version: "OpenCL 1.1 (dOpenCL reproduction)".to_string(),
            devices,
        }
    }

    /// `CL_PLATFORM_NAME`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `CL_PLATFORM_VENDOR`.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// `CL_PLATFORM_VERSION`.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// All devices of the platform.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Devices of a particular type (`clGetDeviceIDs` with a type filter).
    pub fn devices_of_type(&self, ty: DeviceType) -> Vec<Arc<Device>> {
        self.devices.iter().filter(|d| d.device_type() == ty).cloned().collect()
    }

    // ----- canned machine configurations used throughout the evaluation ----

    /// A compute node of the paper's Infiniband cluster: one CPU device
    /// (2× hexa-core Westmere presented as a single device by AMD APP).
    pub fn cluster_node() -> Self {
        Platform::new(
            "AMD Accelerated Parallel Processing",
            "Advanced Micro Devices, Inc.",
            vec![Device::new(DeviceType::Cpu, DeviceProfile::cpu_dual_westmere())],
        )
    }

    /// The paper's GPU server: an NVIDIA Tesla S1070 (4 GPU devices) plus the
    /// host Xeon E5520 as a CPU device.
    pub fn gpu_server() -> Self {
        let mut devices: Vec<Arc<Device>> = (0..4)
            .map(|_| Device::new(DeviceType::Gpu, DeviceProfile::gpu_tesla_s1070_unit()))
            .collect();
        devices.push(Device::new(DeviceType::Cpu, DeviceProfile::cpu_xeon_e5520()));
        Platform::new("NVIDIA CUDA", "NVIDIA Corporation", devices)
    }

    /// The paper's desktop PC with its low-end NVS 3100M GPU.
    pub fn desktop_pc() -> Self {
        Platform::new(
            "NVIDIA CUDA",
            "NVIDIA Corporation",
            vec![Device::new(DeviceType::Gpu, DeviceProfile::gpu_nvs_3100m())],
        )
    }

    /// A tiny test platform with `n` fast deterministic CPU devices.
    pub fn test_platform(n: usize) -> Self {
        let devices = (0..n)
            .map(|i| {
                Device::new(DeviceType::Cpu, DeviceProfile::test_device(&format!("test-cpu-{i}")))
            })
            .collect();
        Platform::new("dOpenCL test platform", "dOpenCL reproduction", devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_platforms_have_expected_devices() {
        assert_eq!(Platform::cluster_node().devices().len(), 1);
        let server = Platform::gpu_server();
        assert_eq!(server.devices().len(), 5);
        assert_eq!(server.devices_of_type(DeviceType::Gpu).len(), 4);
        assert_eq!(server.devices_of_type(DeviceType::Cpu).len(), 1);
        assert_eq!(Platform::desktop_pc().devices_of_type(DeviceType::Gpu).len(), 1);
        assert_eq!(Platform::test_platform(3).devices().len(), 3);
    }

    #[test]
    fn platform_info() {
        let p = Platform::cluster_node();
        assert!(p.name().contains("AMD"));
        assert!(p.version().contains("OpenCL"));
        assert!(!p.vendor().is_empty());
    }
}
