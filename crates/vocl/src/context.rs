//! OpenCL contexts: a set of devices sharing management objects.

use crate::device::Device;
use crate::error::{ClError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_CONTEXT_ID: AtomicU64 = AtomicU64::new(1);

/// An OpenCL context (`cl_context`).
#[derive(Debug)]
pub struct Context {
    id: u64,
    devices: Vec<Arc<Device>>,
}

impl Context {
    /// `clCreateContext`: create a context over `devices`.
    pub fn new(devices: Vec<Arc<Device>>) -> Result<Arc<Context>> {
        if devices.is_empty() {
            return Err(ClError::InvalidValue("a context needs at least one device".into()));
        }
        Ok(Arc::new(Context { id: NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed), devices }))
    }

    /// Unique context id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `CL_CONTEXT_DEVICES`.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// True if `device` belongs to this context.
    pub fn contains_device(&self, device: &Arc<Device>) -> bool {
        self.devices.iter().any(|d| Arc::ptr_eq(d, device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use crate::profile::DeviceProfile;

    #[test]
    fn context_requires_devices() {
        assert!(Context::new(vec![]).is_err());
        let d = Device::new(DeviceType::Cpu, DeviceProfile::test_device("d"));
        let ctx = Context::new(vec![Arc::clone(&d)]).unwrap();
        assert!(ctx.contains_device(&d));
        let other = Device::new(DeviceType::Cpu, DeviceProfile::test_device("e"));
        assert!(!ctx.contains_device(&other));
        assert_eq!(ctx.devices().len(), 1);
    }

    #[test]
    fn context_ids_are_unique() {
        let d = Device::new(DeviceType::Cpu, DeviceProfile::test_device("d"));
        let a = Context::new(vec![Arc::clone(&d)]).unwrap();
        let b = Context::new(vec![d]).unwrap();
        assert_ne!(a.id(), b.id());
    }
}
