//! Kernel objects and the kernel execution path shared by command queues.

use crate::buffer::Buffer;
use crate::error::{ClError, Result};
use crate::program::{built_in_kernel, Program};
use oclc::{BufferBinding, KernelArgValue, NdRange, Value, WorkItemCounters};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_KERNEL_ID: AtomicU64 = AtomicU64::new(1);

/// A kernel argument as set by `clSetKernelArg`.
#[derive(Debug, Clone)]
pub enum KernelArg {
    /// A scalar or vector passed by value.
    Scalar(Value),
    /// A buffer memory object.
    Buffer(Arc<Buffer>),
    /// `__local` memory of the given size in bytes.
    Local(usize),
}

/// A kernel object (`cl_kernel`).
pub struct Kernel {
    id: u64,
    program: Arc<Program>,
    name: String,
    /// Compiled handle resolved once at `clCreateKernel` time (source
    /// programs only).  Launches execute through this cached handle, so they
    /// never re-parse, re-sema, or re-lower the program source.
    handle: Option<oclc::KernelHandle>,
    declared_args: Option<usize>,
    args: Mutex<Vec<Option<KernelArg>>>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("id", &self.id).field("name", &self.name).finish()
    }
}

impl Kernel {
    pub(crate) fn new(
        program: Arc<Program>,
        name: &str,
        handle: Option<oclc::KernelHandle>,
    ) -> Arc<Kernel> {
        let declared_args = handle.as_ref().map(|h| h.num_args());
        Arc::new(Kernel {
            id: NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed),
            program,
            name: name.to_string(),
            handle,
            declared_args,
            args: Mutex::new(match declared_args {
                Some(n) => vec![None; n],
                None => Vec::new(),
            }),
        })
    }

    /// Unique kernel id within the process.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Kernel function name (`CL_KERNEL_FUNCTION_NAME`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Declared argument count (`CL_KERNEL_NUM_ARGS`), if known.
    pub fn num_args(&self) -> Option<usize> {
        self.declared_args
    }

    /// `clSetKernelArg`.
    pub fn set_arg(&self, index: usize, arg: KernelArg) -> Result<()> {
        let mut args = self.args.lock();
        if let Some(n) = self.declared_args {
            if index >= n {
                return Err(ClError::InvalidValue(format!(
                    "argument index {index} out of range (kernel '{}' has {n} arguments)",
                    self.name
                )));
            }
        } else if index >= args.len() {
            args.resize(index + 1, None);
        }
        args[index] = Some(arg);
        Ok(())
    }

    /// Snapshot of the currently set arguments; errors if any is missing.
    pub fn args_snapshot(&self) -> Result<Vec<KernelArg>> {
        let args = self.args.lock();
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            match a {
                Some(a) => out.push(a.clone()),
                None => {
                    return Err(ClError::InvalidKernelArgs(format!(
                        "argument {i} of kernel '{}' has not been set",
                        self.name
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Execute the kernel over `range` on the calling thread.
    ///
    /// Returns the work-item counters and whether the interpreted path was
    /// used (`true`) or a built-in native kernel (`false`); the caller uses
    /// this to pick the right compute model.
    pub fn execute(&self, range: &NdRange) -> Result<(WorkItemCounters, bool)> {
        let args = self.args_snapshot()?;

        // Deduplicate buffers so that a buffer bound to two arguments is only
        // locked once (locking the same buffer twice would deadlock).
        let mut unique: Vec<Arc<Buffer>> = Vec::new();
        let mut arg_values: Vec<KernelArgValue> = Vec::with_capacity(args.len());
        for arg in &args {
            match arg {
                KernelArg::Scalar(v) => arg_values.push(KernelArgValue::Scalar(v.clone())),
                KernelArg::Local(bytes) => arg_values.push(KernelArgValue::Local(*bytes)),
                KernelArg::Buffer(b) => {
                    let idx = unique.iter().position(|u| Arc::ptr_eq(u, b)).unwrap_or_else(|| {
                        unique.push(Arc::clone(b));
                        unique.len() - 1
                    });
                    arg_values.push(KernelArgValue::Buffer(idx));
                }
            }
        }

        let mut guards: Vec<_> = unique.iter().map(|b| b.lock_data()).collect();
        let mut bindings: Vec<BufferBinding<'_>> =
            guards.iter_mut().map(|g| BufferBinding::new(g)).collect();

        if self.program.is_built_in() {
            let f = built_in_kernel(&self.name).ok_or_else(|| {
                ClError::InvalidKernelName(format!("built-in kernel '{}' vanished", self.name))
            })?;
            let counters =
                f(range, &arg_values, &mut bindings).map_err(ClError::ExecutionFailure)?;
            Ok((counters, false))
        } else {
            let handle = self
                .handle
                .as_ref()
                .ok_or_else(|| ClError::InvalidOperation("program is not built".into()))?;
            let counters = handle
                .execute(range, &arg_values, &mut bindings)
                .map_err(|e| ClError::ExecutionFailure(e.to_string()))?;
            Ok((counters, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::context::Context;
    use crate::device::{Device, DeviceType};
    use crate::profile::DeviceProfile;
    use crate::program::register_built_in_kernel;

    fn ctx() -> Arc<Context> {
        Context::new(vec![Device::new(DeviceType::Cpu, DeviceProfile::test_device("d"))]).unwrap()
    }

    #[test]
    fn interpreted_kernel_executes_with_buffers() {
        let context = ctx();
        let program = Program::with_source(
            Arc::clone(&context),
            "__kernel void fill(__global int* out, int v) { out[get_global_id(0)] = v; }",
        );
        program.build().unwrap();
        let kernel = program.create_kernel("fill").unwrap();
        let buffer = Buffer::new(Arc::clone(&context), 4 * 8, MemFlags::READ_WRITE, None).unwrap();
        kernel.set_arg(0, KernelArg::Buffer(Arc::clone(&buffer))).unwrap();
        kernel.set_arg(1, KernelArg::Scalar(Value::int(7))).unwrap();
        let (counters, interpreted) = kernel.execute(&NdRange::linear(8)).unwrap();
        assert!(interpreted);
        assert_eq!(counters.work_items, 8);
        let bytes = buffer.read(0, 32).unwrap();
        for chunk in bytes.chunks_exact(4) {
            assert_eq!(i32::from_le_bytes(chunk.try_into().unwrap()), 7);
        }
    }

    #[test]
    fn missing_argument_is_reported() {
        let context = ctx();
        let program = Program::with_source(
            Arc::clone(&context),
            "__kernel void fill(__global int* out, int v) { out[get_global_id(0)] = v; }",
        );
        program.build().unwrap();
        let kernel = program.create_kernel("fill").unwrap();
        let err = kernel.execute(&NdRange::linear(1)).unwrap_err();
        assert!(matches!(err, ClError::InvalidKernelArgs(_)));
    }

    #[test]
    fn arg_index_out_of_range_is_rejected() {
        let context = ctx();
        let program = Program::with_source(
            Arc::clone(&context),
            "__kernel void one(__global int* out) { out[0] = 1; }",
        );
        program.build().unwrap();
        let kernel = program.create_kernel("one").unwrap();
        assert!(kernel.set_arg(5, KernelArg::Local(16)).is_err());
        assert_eq!(kernel.num_args(), Some(1));
    }

    #[test]
    fn same_buffer_bound_twice_does_not_deadlock() {
        let context = ctx();
        let program = Program::with_source(
            Arc::clone(&context),
            "__kernel void addself(__global int* a, __global int* b) { size_t i = get_global_id(0); a[i] = a[i] + b[i]; }",
        );
        program.build().unwrap();
        let kernel = program.create_kernel("addself").unwrap();
        let buffer = Buffer::new(
            Arc::clone(&context),
            16,
            MemFlags::READ_WRITE,
            Some(&[1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0]),
        )
        .unwrap();
        kernel.set_arg(0, KernelArg::Buffer(Arc::clone(&buffer))).unwrap();
        kernel.set_arg(1, KernelArg::Buffer(Arc::clone(&buffer))).unwrap();
        kernel.execute(&NdRange::linear(4)).unwrap();
        let out = buffer.read(0, 16).unwrap();
        let values: Vec<i32> =
            out.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(values, vec![2, 4, 6, 8]);
    }

    #[test]
    fn built_in_kernel_executes_natively() {
        register_built_in_kernel(
            "unit_test_double",
            Arc::new(|range, args, bufs| {
                let KernelArgValue::Buffer(idx) = args[0] else {
                    return Err("expected buffer".into());
                };
                let n = range.total_items();
                // Interpret the binding as i32 and double each element.
                let _ = idx;
                let buf = &mut bufs[0];
                let len = buf.len();
                let _ = len;
                // BufferBinding has no direct accessor; use a scratch kernel
                // counters result only — the real workloads mutate through
                // load/store helpers in their own crates.
                Ok(WorkItemCounters {
                    work_items: n as u64,
                    ops: (n * 2) as u64,
                    ..Default::default()
                })
            }),
        );
        let context = ctx();
        let program =
            Program::with_built_in_kernels(Arc::clone(&context), "unit_test_double").unwrap();
        let kernel = program.create_kernel("unit_test_double").unwrap();
        let buffer = Buffer::new(Arc::clone(&context), 16, MemFlags::READ_WRITE, None).unwrap();
        kernel.set_arg(0, KernelArg::Buffer(buffer)).unwrap();
        let (counters, interpreted) = kernel.execute(&NdRange::linear(4)).unwrap();
        assert!(!interpreted);
        assert_eq!(counters.work_items, 4);
        assert_eq!(counters.ops, 8);
    }
}
