//! OpenCL-style error codes.

use std::fmt;

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, ClError>;

/// Error codes mirroring the OpenCL API error space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// `CL_DEVICE_NOT_FOUND`
    DeviceNotFound,
    /// `CL_DEVICE_NOT_AVAILABLE`
    DeviceNotAvailable,
    /// `CL_BUILD_PROGRAM_FAILURE` with its build log.
    BuildProgramFailure(String),
    /// `CL_INVALID_VALUE`
    InvalidValue(String),
    /// `CL_INVALID_CONTEXT`
    InvalidContext(String),
    /// `CL_INVALID_MEM_OBJECT`
    InvalidMemObject(String),
    /// `CL_INVALID_KERNEL_NAME`
    InvalidKernelName(String),
    /// `CL_INVALID_KERNEL_ARGS`
    InvalidKernelArgs(String),
    /// `CL_INVALID_WORK_GROUP_SIZE`
    InvalidWorkGroupSize(String),
    /// `CL_MEM_OBJECT_ALLOCATION_FAILURE`
    MemObjectAllocationFailure(String),
    /// `CL_OUT_OF_RESOURCES`
    OutOfResources(String),
    /// `CL_INVALID_OPERATION`
    InvalidOperation(String),
    /// `CL_INVALID_EVENT`
    InvalidEvent(String),
    /// Kernel execution failed at runtime (maps to
    /// `CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST` territory).
    ExecutionFailure(String),
    /// The command queue (or its device worker) has shut down.
    QueueShutDown,
}

impl ClError {
    /// The numeric OpenCL error code this variant corresponds to.
    pub fn code(&self) -> i32 {
        match self {
            ClError::DeviceNotFound => -1,
            ClError::DeviceNotAvailable => -2,
            ClError::BuildProgramFailure(_) => -11,
            ClError::MemObjectAllocationFailure(_) => -4,
            ClError::OutOfResources(_) => -5,
            ClError::InvalidValue(_) => -30,
            ClError::InvalidContext(_) => -34,
            ClError::InvalidMemObject(_) => -38,
            ClError::InvalidKernelName(_) => -46,
            ClError::InvalidKernelArgs(_) => -52,
            ClError::InvalidWorkGroupSize(_) => -54,
            ClError::InvalidOperation(_) => -59,
            ClError::InvalidEvent(_) => -58,
            ClError::ExecutionFailure(_) => -14,
            ClError::QueueShutDown => -36,
        }
    }
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::DeviceNotFound => write!(f, "CL_DEVICE_NOT_FOUND"),
            ClError::DeviceNotAvailable => write!(f, "CL_DEVICE_NOT_AVAILABLE"),
            ClError::BuildProgramFailure(log) => {
                write!(f, "CL_BUILD_PROGRAM_FAILURE:\n{log}")
            }
            ClError::InvalidValue(m) => write!(f, "CL_INVALID_VALUE: {m}"),
            ClError::InvalidContext(m) => write!(f, "CL_INVALID_CONTEXT: {m}"),
            ClError::InvalidMemObject(m) => write!(f, "CL_INVALID_MEM_OBJECT: {m}"),
            ClError::InvalidKernelName(m) => write!(f, "CL_INVALID_KERNEL_NAME: {m}"),
            ClError::InvalidKernelArgs(m) => write!(f, "CL_INVALID_KERNEL_ARGS: {m}"),
            ClError::InvalidWorkGroupSize(m) => write!(f, "CL_INVALID_WORK_GROUP_SIZE: {m}"),
            ClError::MemObjectAllocationFailure(m) => {
                write!(f, "CL_MEM_OBJECT_ALLOCATION_FAILURE: {m}")
            }
            ClError::OutOfResources(m) => write!(f, "CL_OUT_OF_RESOURCES: {m}"),
            ClError::InvalidOperation(m) => write!(f, "CL_INVALID_OPERATION: {m}"),
            ClError::InvalidEvent(m) => write!(f, "CL_INVALID_EVENT: {m}"),
            ClError::ExecutionFailure(m) => write!(f, "kernel execution failure: {m}"),
            ClError::QueueShutDown => write!(f, "command queue has shut down"),
        }
    }
}

impl std::error::Error for ClError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_opencl_numbers() {
        assert_eq!(ClError::DeviceNotFound.code(), -1);
        assert_eq!(ClError::BuildProgramFailure(String::new()).code(), -11);
        assert_eq!(ClError::InvalidValue("x".into()).code(), -30);
        assert_eq!(ClError::InvalidKernelName("k".into()).code(), -46);
    }

    #[test]
    fn display_contains_cl_name() {
        assert!(ClError::InvalidValue("oops".into()).to_string().contains("CL_INVALID_VALUE"));
        assert!(ClError::BuildProgramFailure("log text".into()).to_string().contains("log text"));
    }
}
