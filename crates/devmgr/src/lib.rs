//! # devmgr — the dOpenCL cluster resource manager
//!
//! Section IV of the paper extends dOpenCL with a central, network-accessible
//! **device manager** so that multiple applications can share the devices of
//! a distributed system without stepping on each other.  This crate grows
//! that device manager into a full cluster *resource* manager:
//!
//! **Virtual devices.**  The unit of allocation is no longer a whole
//! physical device but a fractional [`VirtualDevice`]
//! ([`vdev`]): a compute share in millis of one device
//! ([`FULL_COMPUTE_MILLIS`] = the whole device) plus a device-memory quota
//! in bytes.  The manager guarantees Σ shares ≤ 100% per physical device.
//! Legacy whole-device requests ([`DmRequirement`]) map to all-or-nothing
//! 1000-milli shares.
//!
//! **Pluggable scheduling** ([`sched`]).  [`Strategy::FirstFit`] and
//! [`Strategy::RoundRobin`] reproduce the original placement behaviour;
//! [`Strategy::Fair`] adds weighted fair queuing — when the cluster
//! saturates, existing grants are shrunk toward their weighted fair share
//! (never below each share's floor) to admit newcomers; and
//! [`Strategy::Priority`] preempts lower-priority leases (shrink to floor,
//! then revoke and migrate).  When no policy move can produce the
//! requested floor, admission control rejects with
//! [`DevMgrError::Saturated`].
//!
//! **Node lifecycle.**  Servers *join* via registration, prove liveness
//! with heartbeats, can be *drained* (no new placements; existing shares
//! migrate off as capacity allows) before *leaving*
//! ([`DeviceManager::remove_server`]), and a crashed node's shares are
//! failed over to survivors by the health sweep.  Clients that
//! [`client::watch_lease`] their lease receive `LeaseChanged` pushes on
//! every migration, shrink, or revocation so they can reconnect and
//! re-validate buffers through the coherence directory.
//!
//! The pieces:
//!
//! * [`vdev`] — fractional virtual devices and share requests,
//! * [`sched`] — the scheduling policies and the weighted fair division,
//! * [`manager::DeviceManager`] — the allocation registry, lease logic and
//!   node lifecycle; [`manager::DeviceManagerServer`] is its network front
//!   end,
//! * [`managed::ManagedDaemon`] — the daemon-side integration ("managed
//!   mode"): registers the server's devices, heartbeats, and installs an
//!   [`dopencl::AccessPolicy`] that only exposes devices (and quotas)
//!   assigned to the client's lease,
//! * [`client`] — the application-side helpers: request whole devices or
//!   fractional shares, connect with the lease's authentication id, watch
//!   for lease changes, release,
//! * [`config`] — the XML device-request configuration file (Listing 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod managed;
pub mod manager;
pub mod protocol;
pub mod sched;
// `virtual` is a reserved Rust keyword, so the module is mounted as `vdev`
// while keeping the file name the architecture docs use.
#[path = "virtual.rs"]
pub mod vdev;

pub use client::{
    connect_via_device_manager, drain_server, get_lease, release_assignment, remove_server,
    request_assignment, request_shares, watch_lease, Assignment, LeaseChangeNotice, LeaseWatch,
};
pub use config::{parse_device_request, DeviceRequestConfig, DeviceRequirement};
pub use error::{DevMgrError, Result};
pub use managed::{HeartbeatTimer, ManagedDaemon};
pub use manager::{
    DeviceManager, DeviceManagerServer, HealthMonitor, Lease, LeaseFailover, SchedulingStrategy,
};
pub use protocol::{DmDevice, DmGrant, DmQuota, DmRequirement, DmShareRequest, LeaseChangeReason};
pub use sched::Strategy;
pub use vdev::{ShareRequest, VirtualDevice, FULL_COMPUTE_MILLIS};
