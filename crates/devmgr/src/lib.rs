//! # devmgr — the dOpenCL central device manager
//!
//! Section IV of the paper extends dOpenCL with a central, network-accessible
//! **device manager** so that multiple applications can share the devices of
//! a distributed system without stepping on each other: every device is used
//! by at most one application at a time.
//!
//! The pieces:
//!
//! * [`manager::DeviceManager`] — the registry of free/assigned devices and
//!   the lease logic (authentication id + device set + server set),
//! * [`manager::DeviceManagerServer`] — its network front end,
//! * [`managed::ManagedDaemon`] — the daemon-side integration ("managed
//!   mode"): registers the server's devices and installs an
//!   [`dopencl::AccessPolicy`] that only exposes devices assigned to the
//!   client's lease,
//! * [`client`] — the application-side helpers: send an assignment request,
//!   connect to the returned servers with the lease's authentication id,
//!   release the lease,
//! * [`config`] — the XML device-request configuration file (Listing 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod managed;
pub mod manager;
pub mod protocol;

pub use client::{connect_via_device_manager, release_assignment, request_assignment, Assignment};
pub use config::{parse_device_request, DeviceRequestConfig, DeviceRequirement};
pub use error::{DevMgrError, Result};
pub use managed::{HeartbeatTimer, ManagedDaemon};
pub use manager::{
    DeviceManager, DeviceManagerServer, HealthMonitor, Lease, LeaseFailover, SchedulingStrategy,
};
pub use protocol::{DmDevice, DmRequirement};
