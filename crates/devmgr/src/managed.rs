//! Managed mode: the daemon-side integration with the device manager
//! (Section IV-A of the paper).
//!
//! A daemon started in managed mode connects to the device manager,
//! registers its devices, and from then on only returns those devices to a
//! client that the device manager has associated with the client's lease
//! authentication id.  When a client disconnects (normally or abnormally),
//! the daemon reports the invalidated authentication id so the devices
//! return to the free set (Section IV-C).

use crate::error::Result;
use crate::protocol::{DmDevice, DmNotification, DmRequest, DmResponse};
use crate::vdev::FULL_COMPUTE_MILLIS;
use dopencl::daemon::AccessPolicy;
use gcf::rpc::{Endpoint, EndpointHandler};
use gcf::transport::Transport;
use gcf::wire::{Decode, Encode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vocl::{Device, DeviceInfoParam, DeviceInfoValue};

/// Convert a `vocl` device into its device-manager registration record.
pub fn describe_device(device: &Device) -> DmDevice {
    let compute_units = match device.info(DeviceInfoParam::MaxComputeUnits) {
        DeviceInfoValue::UInt(v) => v as u32,
        _ => 0,
    };
    DmDevice {
        remote_id: device.id(),
        name: device.name().to_string(),
        vendor: device.vendor().to_string(),
        device_type: device.device_type().to_string(),
        compute_units,
        global_mem_bytes: device.profile().global_mem_bytes,
    }
}

/// The quota a lease holds on one local device: (compute millis, memory
/// bytes).  Legacy whole-device pushes record a full-device quota.
pub type DeviceQuota = (u32, u64);

struct LeaseTable {
    /// auth id → device id → quota this lease may use on this server.
    assignments: HashMap<String, HashMap<u64, DeviceQuota>>,
}

struct PolicyNotificationHandler {
    table: Arc<Mutex<LeaseTable>>,
}

impl PolicyNotificationHandler {
    fn apply(&self, payload: &[u8]) -> bool {
        let Ok(notification) = DmNotification::from_bytes(payload) else { return false };
        let mut table = self.table.lock();
        match notification {
            DmNotification::AssignDevices { auth_id, device_ids } => {
                let entry = table.assignments.entry(auth_id).or_default();
                for id in device_ids {
                    entry.insert(id, (FULL_COMPUTE_MILLIS, 0));
                }
            }
            DmNotification::AssignShares { auth_id, shares } => {
                let entry = table.assignments.entry(auth_id).or_default();
                for quota in shares {
                    entry.insert(quota.device_id, (quota.compute_millis, quota.mem_bytes));
                }
            }
            DmNotification::UpdateQuota { auth_id, quotas } => {
                let entry = table.assignments.entry(auth_id.clone()).or_default();
                for quota in quotas {
                    if quota.compute_millis == 0 {
                        entry.remove(&quota.device_id);
                    } else {
                        entry.insert(quota.device_id, (quota.compute_millis, quota.mem_bytes));
                    }
                }
                if table.assignments.get(&auth_id).map(|e| e.is_empty()).unwrap_or(false) {
                    table.assignments.remove(&auth_id);
                }
            }
            DmNotification::RevokeLease { auth_id } => {
                table.assignments.remove(&auth_id);
            }
            // Lease-change notices are addressed to watching *clients*; a
            // daemon can see one when it shares an endpoint in tests —
            // nothing to update locally (the quota pushes carry the facts).
            DmNotification::LeaseChanged { .. } => {}
        }
        true
    }
}

impl EndpointHandler for PolicyNotificationHandler {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        // The device manager pushes lease updates as *calls* so that the
        // client cannot observe a daemon that does not yet know its auth id
        // (the reply acknowledges that the table is updated).
        if self.apply(payload) {
            DmResponse::Ok.to_bytes()
        } else {
            DmResponse::Error { message: "malformed lease update".into() }.to_bytes()
        }
    }

    fn handle_notification(&self, payload: &[u8]) {
        // Older managers pushed updates as fire-and-forget notifications;
        // keep accepting them.
        self.apply(payload);
    }
}

/// A handle to the managed-mode machinery of one daemon: the policy to pass
/// to [`dopencl::Daemon::start`] plus the connection to the device manager.
pub struct ManagedDaemon {
    policy: Arc<ManagedPolicyShared>,
}

/// Internal shared state between [`ManagedDaemon`] and the policy handed to
/// the daemon.
struct ManagedPolicyShared {
    table: Arc<Mutex<LeaseTable>>,
    endpoint: Arc<Endpoint>,
    server_name: String,
}

impl AccessPolicy for ManagedPolicyShared {
    fn visible_devices(&self, auth_id: Option<&str>, all: &[Arc<Device>]) -> Vec<Arc<Device>> {
        let Some(auth_id) = auth_id else { return Vec::new() };
        let table = self.table.lock();
        let Some(allowed) = table.assignments.get(auth_id) else { return Vec::new() };
        all.iter().filter(|d| allowed.contains_key(&d.id())).cloned().collect()
    }

    fn managed(&self) -> bool {
        true
    }

    fn client_disconnected(&self, auth_id: Option<&str>) {
        if let Some(auth_id) = auth_id {
            // Only report leases this daemon still hosts.  After a
            // migration the client legitimately disconnects from the old
            // node — whose quota entry the manager already cleared — and
            // reporting that would release the lease out from under the
            // new node.
            if self.table.lock().assignments.remove(auth_id).is_none() {
                return;
            }
            let request = DmRequest::ReportDisconnect { auth_id: auth_id.to_string() };
            let _ = self.endpoint.call(request.to_bytes());
        }
    }
}

impl ManagedDaemon {
    /// Connect to the device manager at `dm_address`, register this server's
    /// `devices`, and return the managed-mode handle.
    ///
    /// `server_address` is the address *clients* should use to reach the
    /// daemon (what the device manager returns in a lease's server list).
    pub fn connect(
        transport: Arc<dyn Transport>,
        dm_address: &str,
        server_name: &str,
        server_address: &str,
        devices: &[Arc<Device>],
    ) -> Result<ManagedDaemon> {
        let table = Arc::new(Mutex::new(LeaseTable { assignments: HashMap::new() }));
        let conn = transport.connect(dm_address)?;
        let handler = Arc::new(PolicyNotificationHandler { table: Arc::clone(&table) });
        let endpoint = Endpoint::new(conn, handler, format!("managed-{server_name}"));

        let request = DmRequest::RegisterServer {
            server_name: server_name.to_string(),
            address: server_address.to_string(),
            devices: devices.iter().map(|d| describe_device(d)).collect(),
        };
        let response = DmResponse::from_bytes(&endpoint.call(request.to_bytes())?)
            .map_err(|e| crate::DevMgrError::Protocol(e.to_string()))?;
        match response {
            DmResponse::Ok => {}
            DmResponse::Error { message } => return Err(crate::DevMgrError::Protocol(message)),
            other => {
                return Err(crate::DevMgrError::Protocol(format!("unexpected response {other:?}")))
            }
        }
        Ok(ManagedDaemon {
            policy: Arc::new(ManagedPolicyShared {
                table,
                endpoint,
                server_name: server_name.to_string(),
            }),
        })
    }

    /// The access policy to pass to [`dopencl::Daemon::start`].
    pub fn policy(&self) -> Arc<dyn AccessPolicy> {
        Arc::clone(&self.policy) as Arc<dyn AccessPolicy>
    }

    /// The quota (compute millis, memory bytes) `auth_id` currently holds
    /// on local device `device_id`, or `None` when the lease has no share
    /// there.  This is how a daemon enforces fractional shares: the compute
    /// part throttles scheduling, the memory part caps allocations.
    pub fn lease_quota(&self, auth_id: &str, device_id: u64) -> Option<DeviceQuota> {
        self.policy.table.lock().assignments.get(auth_id)?.get(&device_id).copied()
    }

    /// Send one liveness beacon to the device manager (Section IV-C).  The
    /// manager marks this server down — and fails its leases over — after
    /// too many missed beats.  Most callers want the periodic
    /// [`ManagedDaemon::start_heartbeat`] timer instead; this single-shot
    /// form remains for tests that drive the health clock by hand.
    pub fn send_heartbeat(&self) -> Result<()> {
        beat(&self.policy)
    }

    /// Start a background timer that sends a heartbeat every `interval`
    /// until the returned [`HeartbeatTimer`] is dropped.
    ///
    /// This is what a daemon main loop installs right after
    /// [`ManagedDaemon::connect`]: with the timer running, the device
    /// manager's [`crate::DeviceManager::check_health`] sweeps never mark a
    /// live daemon down, without anyone hand-feeding `send_heartbeat`.
    /// Send failures are ignored — a device manager that restarts sees the
    /// next beat after this server re-registers.
    pub fn start_heartbeat(&self, interval: std::time::Duration) -> HeartbeatTimer {
        let policy = Arc::clone(&self.policy);
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name(format!("heartbeat-{}", self.policy.server_name))
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        let _ = beat(&policy);
                    }
                    _ => return,
                }
            })
            .expect("spawn heartbeat thread");
        HeartbeatTimer { stop: stop_tx, handle: Some(handle) }
    }
}

fn beat(policy: &ManagedPolicyShared) -> Result<()> {
    let request = DmRequest::Heartbeat { server_name: policy.server_name.clone() };
    let response = DmResponse::from_bytes(&policy.endpoint.call(request.to_bytes())?)
        .map_err(|e| crate::DevMgrError::Protocol(e.to_string()))?;
    match response {
        DmResponse::Ok => Ok(()),
        DmResponse::Error { message } => Err(crate::DevMgrError::Protocol(message)),
        other => Err(crate::DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// Guard for a running heartbeat timer; dropping it stops the beats
/// promptly (the background thread is woken and joined).
#[derive(Debug)]
pub struct HeartbeatTimer {
    stop: std::sync::mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HeartbeatTimer {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{DeviceManager, DeviceManagerServer, SchedulingStrategy};
    use crate::protocol::DmRequirement;
    use gcf::transport::inproc::InprocTransport;
    use vocl::{DeviceProfile, DeviceType, Platform};

    #[test]
    fn managed_policy_filters_by_lease() {
        let transport = InprocTransport::new();
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        let dm_server =
            DeviceManagerServer::start(Arc::clone(&dm), Arc::new(transport.clone()), "devmngr")
                .unwrap();

        let platform = Platform::gpu_server();
        let managed = ManagedDaemon::connect(
            Arc::new(transport.clone()),
            dm_server.address(),
            "gpuserver",
            "gpuserver",
            platform.devices(),
        )
        .unwrap();
        let policy = managed.policy();
        assert!(policy.managed());
        assert_eq!(dm.free_device_count(), 5);

        // Without a lease nothing is visible.
        assert!(policy.visible_devices(None, platform.devices()).is_empty());
        assert!(policy.visible_devices(Some("bogus"), platform.devices()).is_empty());

        // Assign one GPU; the notification updates the policy's table.
        let (lease, servers) = dm
            .assign(
                "client-a",
                &[DmRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }],
            )
            .unwrap();
        assert_eq!(servers, vec!["gpuserver".to_string()]);
        // The lease push is synchronous: once assign() returns, the daemon
        // knows the auth id.
        let visible = policy.visible_devices(Some(&lease.auth_id), platform.devices());
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].device_type(), DeviceType::Gpu);

        // Abnormal disconnect: the policy reports it and the device frees up.
        policy.client_disconnected(Some(&lease.auth_id));
        assert_eq!(dm.free_device_count(), 5);
        assert!(policy.visible_devices(Some(&lease.auth_id), platform.devices()).is_empty());
    }

    /// With the periodic heartbeat timer installed, a live daemon survives
    /// the device manager's background health sweeps indefinitely; once the
    /// timer is dropped, the sweeps mark the silent server down.  No test
    /// code feeds `send_heartbeat` or `tick` by hand.
    #[test]
    fn heartbeat_timer_keeps_a_live_daemon_healthy() {
        use std::time::Duration;

        let transport = InprocTransport::new();
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        let dm_server =
            DeviceManagerServer::start(Arc::clone(&dm), Arc::new(transport.clone()), "devmngr")
                .unwrap();
        let platform = Platform::gpu_server();
        let managed = ManagedDaemon::connect(
            Arc::new(transport.clone()),
            dm_server.address(),
            "gpuserver",
            "gpuserver",
            platform.devices(),
        )
        .unwrap();

        // Beats come much faster than sweeps, with a generous miss budget,
        // so scheduling jitter cannot produce a false "down".
        let beats = managed.start_heartbeat(Duration::from_millis(2));
        let _monitor = dm.start_health_monitor(Duration::from_millis(10), 20);

        // A live daemon is never marked down: poll health across many sweep
        // intervals.
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(dm.server_health(), vec![("gpuserver".to_string(), true)]);
        }

        // Silence the daemon; the monitor must eventually mark it down.
        drop(beats);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if dm.server_health() == vec![("gpuserver".to_string(), false)] {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server was never marked down after its heartbeat timer stopped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn fractional_shares_reach_the_daemon_quota_table() {
        use crate::vdev::ShareRequest;

        let transport = InprocTransport::new();
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        let dm_server =
            DeviceManagerServer::start(Arc::clone(&dm), Arc::new(transport.clone()), "devmngr")
                .unwrap();
        let platform = Platform::gpu_server();
        let managed = ManagedDaemon::connect(
            Arc::new(transport.clone()),
            dm_server.address(),
            "gpuserver",
            "gpuserver",
            platform.devices(),
        )
        .unwrap();

        let share = ShareRequest {
            count: 1,
            attributes: vec![("TYPE".into(), "GPU".into())],
            compute_millis: 400,
            min_millis: 100,
            mem_bytes: 1 << 20,
        };
        let (lease, _) = dm.assign_shares("client-a", &[share], 0).unwrap();
        let (_, device_id) = lease.physical_devices()[0];
        // The install is a synchronous call: once assign_shares() returns,
        // the daemon knows the quota.
        assert_eq!(managed.lease_quota(&lease.auth_id, device_id), Some((400, 1 << 20)));
        // The fractional device is still visible to this lease only.
        let visible = managed.policy().visible_devices(Some(&lease.auth_id), platform.devices());
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].id(), device_id);

        dm.release(&lease.auth_id).unwrap();
        // Revocation is fire-and-forget; poll until the daemon drops it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while managed.lease_quota(&lease.auth_id, device_id).is_some() {
            assert!(std::time::Instant::now() < deadline, "revocation never arrived");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn describe_device_extracts_attributes() {
        let device = vocl::Device::new(DeviceType::Cpu, DeviceProfile::cpu_dual_westmere());
        let described = describe_device(&device);
        assert_eq!(described.device_type, "CPU");
        assert_eq!(described.compute_units, 24);
        assert!(described.vendor.contains("Intel"));
        assert_eq!(described.remote_id, device.id());
    }
}
