//! Device-manager error type.

use std::fmt;

/// Result alias for device-manager operations.
pub type Result<T> = std::result::Result<T, DevMgrError>;

/// Errors produced by the device manager and its clients.
#[derive(Debug, Clone, PartialEq)]
pub enum DevMgrError {
    /// A configuration file could not be parsed.
    Config(String),
    /// No combination of free devices satisfies the assignment request.
    NoMatchingDevices(String),
    /// Matching devices exist but the cluster has no capacity left for the
    /// request's minimum share, and the active policy would not (or could
    /// not) reclaim any — admission control rejected the request.
    Saturated(String),
    /// The referenced lease does not exist (or was already released).
    UnknownLease(String),
    /// A communication error with the device manager.
    Network(gcf::GcfError),
    /// A malformed or unexpected protocol message.
    Protocol(String),
    /// An error reported by the dOpenCL middleware.
    Middleware(String),
}

impl fmt::Display for DevMgrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevMgrError::Config(m) => write!(f, "configuration error: {m}"),
            DevMgrError::NoMatchingDevices(m) => write!(f, "no matching devices: {m}"),
            DevMgrError::Saturated(m) => write!(f, "cluster saturated: {m}"),
            DevMgrError::UnknownLease(m) => write!(f, "unknown lease: {m}"),
            DevMgrError::Network(e) => write!(f, "network error: {e}"),
            DevMgrError::Protocol(m) => write!(f, "protocol error: {m}"),
            DevMgrError::Middleware(m) => write!(f, "middleware error: {m}"),
        }
    }
}

impl std::error::Error for DevMgrError {}

impl From<gcf::GcfError> for DevMgrError {
    fn from(e: gcf::GcfError) -> Self {
        DevMgrError::Network(e)
    }
}

impl From<dopencl::DclError> for DevMgrError {
    fn from(e: dopencl::DclError) -> Self {
        DevMgrError::Middleware(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(DevMgrError::Config("bad".into()).to_string().contains("configuration"));
        let e: DevMgrError = gcf::GcfError::Timeout("t".into()).into();
        assert!(e.to_string().contains("network"));
        let e: DevMgrError = dopencl::DclError::Protocol("p".into()).into();
        assert!(e.to_string().contains("middleware"));
    }
}
