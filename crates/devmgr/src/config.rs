//! XML configuration file for automatic device requests (Listing 3).
//!
//! The paper's example:
//!
//! ```xml
//! <devmngr>devmngr.example.com</devmngr>
//! <devices>
//!   <device count="2">
//!     <attribute name="TYPE">CPU</attribute>
//!     <attribute name="VENDOR">Intel</attribute>
//!     <attribute name="MAX_COMPUTE_UNITS">2</attribute>
//!   </device>
//!   <device>
//!     <attribute name="TYPE">GPU</attribute>
//!   </device>
//! </devices>
//! ```
//!
//! A minimal, purpose-built parser is used (no XML crate): it understands
//! exactly the element structure above, which keeps the format honest while
//! avoiding an external dependency.

use crate::error::{DevMgrError, Result};

/// One `<device>` element: how many devices with which attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceRequirement {
    /// Number of devices requested (`count` attribute, default 1).
    pub count: u32,
    /// Attribute constraints, e.g. `("TYPE", "GPU")`.
    pub attributes: Vec<(String, String)>,
}

/// A parsed device-request configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceRequestConfig {
    /// Address of the device manager (`<devmngr>` element).
    pub device_manager: String,
    /// The requested devices.
    pub devices: Vec<DeviceRequirement>,
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    /// Peek whether the next token is the opening tag `<name ...>`.
    fn at_open_tag(&mut self, name: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix('<') {
            let stripped = stripped.trim_start();
            if let Some(after) = stripped.strip_prefix(name) {
                return after.starts_with(['>', ' ', '/']);
            }
        }
        false
    }

    /// Consume `<name attr="v" ...>`; returns the raw attribute text.
    fn open_tag(&mut self, name: &str) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let inner = rest.strip_prefix('<').ok_or_else(|| {
            DevMgrError::Config(format!("expected <{name}>, found '{}'", snippet(rest)))
        })?;
        let end = inner.find('>').ok_or_else(|| {
            DevMgrError::Config(format!("unterminated tag near '{}'", snippet(rest)))
        })?;
        let tag_body = &inner[..end];
        let mut parts = tag_body.trim().splitn(2, char::is_whitespace);
        let tag_name = parts.next().unwrap_or("");
        if tag_name != name {
            return Err(DevMgrError::Config(format!("expected <{name}>, found <{tag_name}>")));
        }
        self.pos += 1 + end + 1;
        Ok(parts.next().unwrap_or("").to_string())
    }

    /// Consume `</name>`.
    fn close_tag(&mut self, name: &str) -> Result<()> {
        self.skip_ws();
        let rest = self.rest();
        let expected = format!("</{name}>");
        if let Some(after) = rest.strip_prefix(expected.as_str()) {
            self.pos = self.text.len() - after.len();
            Ok(())
        } else {
            Err(DevMgrError::Config(format!("expected {expected} near '{}'", snippet(rest))))
        }
    }

    /// Consume text content up to the next `<`.
    fn text_content(&mut self) -> String {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let content = rest[..end].trim().to_string();
        self.pos += end;
        content
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }
}

fn snippet(s: &str) -> String {
    s.chars().take(24).collect()
}

fn parse_attr(attr_text: &str, key: &str) -> Option<String> {
    // Parses `key="value"` out of a raw attribute string.
    let idx = attr_text.find(key)?;
    let after = &attr_text[idx + key.len()..];
    let after = after.trim_start();
    let after = after.strip_prefix('=')?.trim_start();
    let after = after.strip_prefix('"')?;
    let end = after.find('"')?;
    Some(after[..end].to_string())
}

/// Parse the contents of an XML device-request configuration file.
pub fn parse_device_request(contents: &str) -> Result<DeviceRequestConfig> {
    let mut cursor = Cursor::new(contents);

    cursor.open_tag("devmngr")?;
    let device_manager = cursor.text_content();
    cursor.close_tag("devmngr")?;
    if device_manager.is_empty() {
        return Err(DevMgrError::Config("<devmngr> must contain an address".into()));
    }

    cursor.open_tag("devices")?;
    let mut devices = Vec::new();
    while cursor.at_open_tag("device") {
        let attrs = cursor.open_tag("device")?;
        let count = match parse_attr(&attrs, "count") {
            Some(text) => text
                .parse::<u32>()
                .map_err(|_| DevMgrError::Config(format!("invalid count '{text}'")))?,
            None => 1,
        };
        if count == 0 {
            return Err(DevMgrError::Config("device count must be at least 1".into()));
        }
        let mut attributes = Vec::new();
        while cursor.at_open_tag("attribute") {
            let attr_text = cursor.open_tag("attribute")?;
            let name = parse_attr(&attr_text, "name")
                .ok_or_else(|| DevMgrError::Config("<attribute> needs a name".into()))?;
            let value = cursor.text_content();
            cursor.close_tag("attribute")?;
            attributes.push((name, value));
        }
        cursor.close_tag("device")?;
        devices.push(DeviceRequirement { count, attributes });
    }
    cursor.close_tag("devices")?;

    if !cursor.at_end() {
        return Err(DevMgrError::Config(format!(
            "unexpected trailing content: '{}'",
            snippet(cursor.rest())
        )));
    }
    if devices.is_empty() {
        return Err(DevMgrError::Config("at least one <device> must be requested".into()));
    }
    Ok(DeviceRequestConfig { device_manager, devices })
}

/// Read and parse a device-request file from disk.
pub fn load_device_request(path: &std::path::Path) -> Result<DeviceRequestConfig> {
    let contents = std::fs::read_to_string(path)
        .map_err(|e| DevMgrError::Config(format!("cannot read {}: {e}", path.display())))?;
    parse_device_request(&contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_EXAMPLE: &str = r#"
        <devmngr>devmngr.example.com</devmngr>
        <devices>
          <device count="2">
            <attribute name="TYPE">CPU</attribute>
            <attribute name="VENDOR">Intel</attribute>
            <attribute name="MAX_COMPUTE_UNITS">2</attribute>
          </device>
          <device>
            <attribute name="TYPE">GPU</attribute>
          </device>
        </devices>
    "#;

    #[test]
    fn parses_the_papers_listing_3() {
        let cfg = parse_device_request(PAPER_EXAMPLE).unwrap();
        assert_eq!(cfg.device_manager, "devmngr.example.com");
        assert_eq!(cfg.devices.len(), 2);
        assert_eq!(cfg.devices[0].count, 2);
        assert_eq!(
            cfg.devices[0].attributes,
            vec![
                ("TYPE".to_string(), "CPU".to_string()),
                ("VENDOR".to_string(), "Intel".to_string()),
                ("MAX_COMPUTE_UNITS".to_string(), "2".to_string()),
            ]
        );
        assert_eq!(cfg.devices[1].count, 1);
        assert_eq!(cfg.devices[1].attributes, vec![("TYPE".to_string(), "GPU".to_string())]);
    }

    #[test]
    fn missing_devmngr_is_an_error() {
        assert!(parse_device_request("<devices><device></device></devices>").is_err());
        assert!(parse_device_request("<devmngr></devmngr><devices><device></device></devices>")
            .is_err());
    }

    #[test]
    fn missing_devices_is_an_error() {
        assert!(parse_device_request("<devmngr>x</devmngr><devices></devices>").is_err());
    }

    #[test]
    fn malformed_tags_are_errors() {
        assert!(parse_device_request("<devmngr>x</devmngr><devices><device>").is_err());
        assert!(
            parse_device_request("<devmngr>x</devmngr><devices><wrong></wrong></devices>").is_err()
        );
        assert!(parse_device_request(
            "<devmngr>x</devmngr><devices><device count=\"zero\"></device></devices>"
        )
        .is_err());
        assert!(parse_device_request(
            "<devmngr>x</devmngr><devices><device count=\"0\"></device></devices>"
        )
        .is_err());
    }

    #[test]
    fn attribute_without_name_is_an_error() {
        let bad =
            r#"<devmngr>x</devmngr><devices><device><attribute>GPU</attribute></device></devices>"#;
        assert!(parse_device_request(bad).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let bad = format!("{PAPER_EXAMPLE}<extra/>");
        assert!(parse_device_request(&bad).is_err());
    }

    #[test]
    fn missing_file_is_a_config_error() {
        assert!(load_device_request(std::path::Path::new("/no/such/file.xml")).is_err());
    }
}
