//! Pluggable scheduling policies of the cluster resource manager.
//!
//! The scheduler answers one question: *which physical device should host
//! the next fractional share, and how big should the grant be?*  The
//! manager builds a [`CandidateDevice`] view of every schedulable device
//! (up, not draining, attribute-matching, with its remaining capacity) and
//! the policy picks:
//!
//! * [`Strategy::FirstFit`] — registration order, first device with room;
//!   greedy, no rebalancing.  Early clients get their full ask, late
//!   clients get the scraps — the skew the fig6 harness demonstrates.
//! * [`Strategy::RoundRobin`] — like FirstFit but rotating the starting
//!   device, so concurrent whole-device clients spread out.
//! * [`Strategy::Fair`] — weighted fair queuing: place on the device with
//!   the most remaining capacity, and when the cluster saturates, shrink
//!   existing grants toward their weighted fair share
//!   ([`fair_shares`]) to admit newcomers — never below any share's floor.
//! * [`Strategy::Priority`] — like FirstFit until saturated, then shrink
//!   (and, if need be, revoke and migrate) shares of strictly
//!   lower-priority leases to make room.
//!
//! Admission control is the flip side: when no policy move can produce a
//! grant of at least the request's floor, the request is rejected with
//! [`crate::DevMgrError::Saturated`] instead of degrading every tenant.

/// How shares are placed on (and rebalanced across) physical devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Walk devices in registration order and take the first with room.
    #[default]
    FirstFit,
    /// Spread placements across devices round-robin (the behaviour the
    /// paper's Figure 6 relies on for whole-device leases).
    RoundRobin,
    /// Weighted fair queuing with rebalancing: saturation shrinks existing
    /// grants toward their fair share to admit newcomers.
    Fair,
    /// Strict priorities: saturation preempts (shrinks, then revokes and
    /// migrates) shares of lower-priority leases.
    Priority,
}

/// Backwards-compatible name of [`Strategy`] (the pre-resource-manager
/// device manager called its whole-device policies this).
pub type SchedulingStrategy = Strategy;

/// The scheduler's view of one schedulable physical device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateDevice {
    /// Server index in registration order.
    pub server: usize,
    /// Daemon-local device id.
    pub device: u64,
    /// Compute millis not yet allocated.
    pub free_millis: u32,
    /// Device memory not yet promised to any share.
    pub free_mem: u64,
}

/// A placement decision: where the share goes and how much it gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Server index.
    pub server: usize,
    /// Daemon-local device id.
    pub device: u64,
    /// Granted compute millis (between the request's floor and its desired
    /// share).
    pub millis: u32,
}

/// Pick a device for a share wanting `desired` millis (floor `floor`) and
/// `mem_bytes` of memory.  `candidates` must already be filtered to
/// attribute-matching devices on schedulable servers; `cursor` seeds the
/// round-robin rotation.  Returns `None` when no candidate has room — the
/// caller then applies the policy's saturation move (rebalance, preempt)
/// or rejects.
pub fn place(
    strategy: Strategy,
    candidates: &[CandidateDevice],
    desired: u32,
    floor: u32,
    mem_bytes: u64,
    cursor: usize,
) -> Option<Placement> {
    let fits = |c: &CandidateDevice| c.free_millis >= floor && c.free_mem >= mem_bytes;
    let grant = |c: &CandidateDevice| Placement {
        server: c.server,
        device: c.device,
        millis: desired.min(c.free_millis),
    };
    match strategy {
        Strategy::FirstFit | Strategy::Priority => candidates.iter().find(|c| fits(c)).map(grant),
        Strategy::RoundRobin => {
            if candidates.is_empty() {
                return None;
            }
            let n = candidates.len();
            let start = cursor % n;
            (0..n).map(|i| &candidates[(start + i) % n]).find(|c| fits(c)).map(grant)
        }
        // Fair: least-loaded device first, so equal requests spread out and
        // each lands where rebalancing will bite last.
        Strategy::Fair => {
            candidates.iter().filter(|c| fits(c)).max_by_key(|c| (c.free_millis, c.free_mem)).map(
                |c| Placement {
                    server: c.server,
                    device: c.device,
                    // Fair placements never take more than the fair share of
                    // the device would be if one more equal tenant arrived —
                    // this keeps early arrivals from having to be shrunk
                    // immediately when the next client shows up.
                    millis: desired.min(c.free_millis),
                },
            )
        }
    }
}

/// Weighted max–min fair division ("water filling") of `capacity` millis
/// among tenants with `(weight, floor, desired)` demands.
///
/// Every tenant first receives its floor (floors are honoured even if they
/// oversubscribe — the caller's admission control prevents that), then the
/// remaining capacity is filled in proportion to weight, capped at each
/// tenant's desired share; capacity freed by capped tenants is
/// redistributed among the rest.  The result is the canonical WFQ
/// allocation: `max/min ≤ max-weight/min-weight` for unsatisfied tenants.
pub fn fair_shares(capacity: u32, demands: &[(u32, u32, u32)]) -> Vec<u32> {
    let n = demands.len();
    let mut grant: Vec<u32> =
        demands.iter().map(|&(_, floor, desired)| floor.min(desired)).collect();
    let mut remaining = capacity.saturating_sub(grant.iter().sum::<u32>());
    let mut open: Vec<usize> = (0..n).filter(|&i| grant[i] < demands[i].2).collect();
    while remaining > 0 && !open.is_empty() {
        let total_weight: u64 = open.iter().map(|&i| demands[i].0.max(1) as u64).sum();
        let mut distributed = 0u32;
        let mut still_open = Vec::new();
        for &i in &open {
            let weight = demands[i].0.max(1) as u64;
            let slice = ((remaining as u64 * weight) / total_weight) as u32;
            let room = demands[i].2 - grant[i];
            let take = slice.min(room);
            grant[i] += take;
            distributed += take;
            if grant[i] < demands[i].2 {
                still_open.push(i);
            }
        }
        if distributed == 0 {
            // Integer rounding left crumbs: hand them out one by one,
            // heaviest weight first, until everyone is satisfied or the
            // crumbs run out.
            let mut order = open.clone();
            order.sort_by_key(|&i| std::cmp::Reverse(demands[i].0));
            for &i in &order {
                if remaining == 0 {
                    break;
                }
                if grant[i] < demands[i].2 {
                    grant[i] += 1;
                    remaining -= 1;
                }
            }
            break;
        }
        remaining -= distributed;
        open = still_open;
    }
    grant
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(server: usize, device: u64, free_millis: u32, free_mem: u64) -> CandidateDevice {
        CandidateDevice { server, device, free_millis, free_mem }
    }

    #[test]
    fn first_fit_takes_registration_order() {
        let c = [dev(0, 0, 200, 1000), dev(0, 1, 1000, 1000), dev(1, 0, 1000, 1000)];
        let p = place(Strategy::FirstFit, &c, 500, 100, 0, 0).unwrap();
        assert_eq!((p.server, p.device, p.millis), (0, 0, 200));
    }

    #[test]
    fn fair_picks_least_loaded() {
        let c = [dev(0, 0, 200, 1000), dev(0, 1, 900, 1000), dev(1, 0, 600, 1000)];
        let p = place(Strategy::Fair, &c, 500, 100, 0, 0).unwrap();
        assert_eq!((p.server, p.device, p.millis), (0, 1, 500));
    }

    #[test]
    fn round_robin_rotates_with_cursor() {
        let c = [dev(0, 0, 1000, 0), dev(1, 0, 1000, 0)];
        let p0 = place(Strategy::RoundRobin, &c, 1000, 1000, 0, 0).unwrap();
        let p1 = place(Strategy::RoundRobin, &c, 1000, 1000, 0, 1).unwrap();
        assert_ne!((p0.server, p0.device), (p1.server, p1.device));
    }

    #[test]
    fn floor_and_memory_act_as_admission_filters() {
        let c = [dev(0, 0, 80, 1000)];
        assert!(place(Strategy::FirstFit, &c, 500, 100, 0, 0).is_none(), "below floor");
        assert!(place(Strategy::FirstFit, &c, 80, 80, 2000, 0).is_none(), "not enough memory");
        let p = place(Strategy::FirstFit, &c, 500, 80, 500, 0).unwrap();
        assert_eq!(p.millis, 80);
    }

    #[test]
    fn fair_shares_equal_demands_split_evenly() {
        let g = fair_shares(1000, &[(1, 10, 1000), (1, 10, 1000), (1, 10, 1000), (1, 10, 1000)]);
        assert_eq!(g.iter().sum::<u32>(), 1000);
        let max = *g.iter().max().unwrap();
        let min = *g.iter().min().unwrap();
        assert!(max - min <= 1, "equal tenants must converge to equal shares, got {g:?}");
    }

    #[test]
    fn fair_shares_respect_floors_caps_and_weights() {
        // A capped tenant frees capacity for the others.
        let g = fair_shares(1000, &[(1, 0, 100), (1, 0, 1000)]);
        assert_eq!(g, vec![100, 900]);
        // Weights tilt the split 2:1 (within rounding).
        let g = fair_shares(900, &[(2, 0, 900), (1, 0, 900)]);
        assert!(g[0] >= 2 * g[1] - 2, "weighted split was {g:?}");
        assert_eq!(g.iter().sum::<u32>(), 900);
        // Floors are always honoured.
        let g = fair_shares(300, &[(1, 250, 1000), (1, 250, 1000)]);
        assert_eq!(g, vec![250, 250]);
    }

    #[test]
    fn fair_shares_never_exceed_capacity_when_floors_fit() {
        for tenants in 1..20u32 {
            let demands: Vec<(u32, u32, u32)> =
                (0..tenants).map(|i| (1 + i % 3, 10, 100 + 37 * i)).collect();
            let g = fair_shares(1000, &demands);
            if demands.iter().map(|d| d.1).sum::<u32>() <= 1000 {
                assert!(
                    g.iter().sum::<u32>() <= 1000.max(demands.iter().map(|d| d.1).sum()),
                    "overcommitted: {g:?}"
                );
            }
        }
    }
}
