//! The central device manager, grown into a cluster **resource manager**
//! (Section IV of the paper, extended).
//!
//! The original device manager handed out whole-device leases.  This module
//! now manages *fractional virtual devices* ([`crate::vdev::VirtualDevice`]):
//! each physical device is carved into compute shares (millis of a device)
//! and memory quotas, placed by a pluggable scheduling policy
//! ([`crate::Strategy`]) with admission control, weighted-fair rebalancing
//! and priority preemption.  Node lifecycle is first-class: servers join by
//! registration, prove liveness through heartbeats, can be drained before
//! leaving, and shares of crashed or removed nodes are migrated to
//! survivors — watching clients learn about every change through
//! [`DmNotification::LeaseChanged`] pushes.

use crate::error::{DevMgrError, Result};
use crate::protocol::{
    DmDevice, DmGrant, DmNotification, DmQuota, DmRequest, DmRequirement, DmResponse,
    LeaseChangeReason,
};
use crate::sched::{self, CandidateDevice, Placement};
use crate::vdev::{allocated_mem, allocated_millis, ShareRequest, VirtualDevice};
use gcf::rpc::{Endpoint, EndpointHandler};
use gcf::transport::{Listener, Transport};
use gcf::wire::{Decode, Encode};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

pub use crate::sched::{SchedulingStrategy, Strategy};
pub use crate::vdev::FULL_COMPUTE_MILLIS;

/// A granted lease: an authentication id plus the fractional shares backing
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The unique authentication id.
    pub auth_id: String,
    /// The requesting client's name.
    pub client_name: String,
    /// Scheduling priority (used by [`Strategy::Priority`]; doubles as the
    /// weight under [`Strategy::Fair`]).
    pub priority: u32,
    /// The fractional shares granted to this lease.
    pub virtual_devices: Vec<VirtualDevice>,
}

impl Lease {
    /// The physical devices backing this lease, as
    /// (server index, daemon-local device id), deduplicated in grant order.
    pub fn physical_devices(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = Vec::new();
        for vd in &self.virtual_devices {
            if !out.contains(&(vd.server, vd.device)) {
                out.push((vd.server, vd.device));
            }
        }
        out
    }

    /// Σ compute millis currently granted to this lease.
    pub fn granted_millis(&self) -> u32 {
        allocated_millis(&self.virtual_devices)
    }
}

struct RegisteredServer {
    name: String,
    address: String,
    devices: Vec<DmDevice>,
    endpoint: Option<Weak<Endpoint>>,
    /// Logical tick of the last heartbeat received from this server.
    last_beat: u64,
    /// The server missed too many beats (or was removed) and no longer
    /// hosts new shares; its existing shares were failed over.
    down: bool,
    /// The server is leaving gracefully: existing shares keep running but
    /// no new placements land on it.
    draining: bool,
}

#[derive(Default)]
struct ManagerState {
    servers: Vec<RegisteredServer>,
    leases: BTreeMap<String, Lease>,
    round_robin_cursor: usize,
    /// auth id → client endpoints subscribed to lease-change pushes.
    watchers: HashMap<String, Vec<Weak<Endpoint>>>,
}

/// Outcome of failing one lease over after its server was marked down,
/// drained, or removed (Section IV-C, extended to fractional shares).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseFailover {
    /// The affected lease.
    pub auth_id: String,
    /// Replacement placements on healthy servers, as
    /// (server index, device id).
    pub moved: Vec<(usize, u64)>,
    /// The lease lost shares that could not be replaced (no capacity of
    /// the same device type on a healthy server); it continues on its
    /// survivors — or was released entirely if none remain.
    pub degraded: bool,
}

/// A wire push planned while holding the state lock and issued after
/// releasing it (daemon endpoints reply on this manager's session receiver
/// threads, which must stay free to take the lock).
struct Push {
    endpoint: Arc<Endpoint>,
    payload: Vec<u8>,
    /// Acknowledged call (lease installs) vs fire-and-forget notify
    /// (quota updates, revocations, watcher notices).
    acked: bool,
}

#[derive(Default)]
struct PushPlan {
    pushes: Vec<Push>,
}

impl PushPlan {
    fn call(&mut self, endpoint: Arc<Endpoint>, note: &DmNotification) {
        self.pushes.push(Push { endpoint, payload: note.to_bytes(), acked: true });
    }

    fn notify(&mut self, endpoint: Arc<Endpoint>, note: &DmNotification) {
        self.pushes.push(Push { endpoint, payload: note.to_bytes(), acked: false });
    }

    /// Issue every planned push; failures are ignored (a dead daemon is
    /// handled by the health path, a gone client by lease release).
    fn send(self) {
        for push in self.pushes {
            if push.acked {
                let _ = push.endpoint.call(push.payload);
            } else {
                let _ = push.endpoint.notify(push.payload);
            }
        }
    }
}

/// Guard for a running background health sweep
/// ([`DeviceManager::start_health_monitor`]); dropping it stops the sweep
/// promptly (the background thread is woken and joined).
#[derive(Debug)]
pub struct HealthMonitor {
    stop: std::sync::mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The cluster resource manager's registry and scheduling logic
/// (transport-agnostic).
pub struct DeviceManager {
    strategy: Strategy,
    state: Mutex<ManagerState>,
    next_lease: AtomicU64,
    next_vd: AtomicU64,
    /// Logical health clock: heartbeats stamp it, [`DeviceManager::tick`]
    /// advances it.  Deterministic by design — tests drive time explicitly.
    health_tick: AtomicU64,
}

impl DeviceManager {
    /// Create an empty device manager.
    pub fn new(strategy: Strategy) -> Arc<DeviceManager> {
        Arc::new(DeviceManager {
            strategy,
            state: Mutex::new(ManagerState::default()),
            next_lease: AtomicU64::new(1),
            next_vd: AtomicU64::new(1),
            health_tick: AtomicU64::new(0),
        })
    }

    /// The active scheduling policy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    // ----- node lifecycle ---------------------------------------------------

    /// Register (or re-register) a server and its devices; returns the
    /// server index.  Registration is how a node *joins* the cluster; a
    /// restarted daemon re-registers and its unallocated capacity becomes
    /// schedulable again.
    pub fn register_server(
        &self,
        name: &str,
        address: &str,
        devices: Vec<DmDevice>,
        endpoint: Option<Weak<Endpoint>>,
    ) -> usize {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut state = self.state.lock();
        if let Some(index) = state.servers.iter().position(|s| s.name == name) {
            // Re-registration replaces the endpoint but keeps allocations;
            // a restarted daemon comes back up with a fresh beat.
            let server = &mut state.servers[index];
            server.endpoint = endpoint;
            server.address = address.to_string();
            server.devices = devices;
            server.last_beat = now;
            server.down = false;
            server.draining = false;
            return index;
        }
        let index = state.servers.len();
        state.servers.push(RegisteredServer {
            name: name.to_string(),
            address: address.to_string(),
            devices,
            endpoint,
            last_beat: now,
            down: false,
            draining: false,
        });
        index
    }

    /// Record a liveness beacon from `server_name`.  Returns `false` for an
    /// unknown server.  A beat from a server previously marked down brings
    /// it back up (its unallocated capacity is schedulable again).
    pub fn heartbeat(&self, server_name: &str) -> bool {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut state = self.state.lock();
        let Some(index) = state.servers.iter().position(|s| s.name == server_name) else {
            return false;
        };
        state.servers[index].last_beat = now;
        state.servers[index].down = false;
        true
    }

    /// Advance the logical health clock by one tick and return the new
    /// value.  Callers pair this with [`DeviceManager::check_health`].
    pub fn tick(&self) -> u64 {
        self.health_tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Start a background sweep that advances the health clock and runs
    /// [`DeviceManager::check_health`] every `interval` until the returned
    /// [`HealthMonitor`] is dropped.
    ///
    /// A server whose heartbeat timer beats faster than `interval` is never
    /// marked down; one that goes silent is failed over after roughly
    /// `max_missed + 1` intervals.  Tests that need determinism keep driving
    /// [`DeviceManager::tick`] / [`DeviceManager::check_health`] by hand
    /// instead of starting a monitor.
    pub fn start_health_monitor(
        self: &Arc<Self>,
        interval: std::time::Duration,
        max_missed: u64,
    ) -> HealthMonitor {
        let manager = Arc::clone(self);
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("devmgr-health".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        manager.tick();
                        // Failover side effects (lease pushes) happen inside
                        // check_health; the event list is for callers that
                        // sweep manually.
                        let _ = manager.check_health(max_missed);
                    }
                    _ => return,
                }
            })
            .expect("spawn health monitor thread");
        HealthMonitor { stop: stop_tx, handle: Some(handle) }
    }

    /// Health of every registered server as (name, up).
    pub fn server_health(&self) -> Vec<(String, bool)> {
        self.state.lock().servers.iter().map(|s| (s.name.clone(), !s.down)).collect()
    }

    /// Σ compute millis currently allocated on `server_name`'s devices, or
    /// `None` for an unknown server.  `Some(0)` means the server is idle
    /// and safe to remove after a drain.
    pub fn server_load(&self, server_name: &str) -> Option<u32> {
        let state = self.state.lock();
        let index = state.servers.iter().position(|s| s.name == server_name)?;
        Some(
            state
                .leases
                .values()
                .flat_map(|l| l.virtual_devices.iter())
                .filter(|vd| vd.server == index)
                .map(|vd| vd.compute_millis)
                .sum(),
        )
    }

    /// Mark every server that missed more than `max_missed` ticks since its
    /// last heartbeat as down and fail its shares over to healthy servers
    /// (Section IV-C).  A server *already* marked down never re-triggers
    /// failover: its shares were reassigned when it first went down, so
    /// subsequent sweeps see nothing left to move.  Leases that cannot be
    /// made whole continue degraded on their surviving shares, or are
    /// released when nothing survives.
    pub fn check_health(&self, max_missed: u64) -> Vec<LeaseFailover> {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut state = self.state.lock();
        let newly_down: Vec<usize> = state
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.down && now.saturating_sub(s.last_beat) > max_missed)
            .map(|(i, _)| i)
            .collect();
        if newly_down.is_empty() {
            return Vec::new();
        }
        for &i in &newly_down {
            state.servers[i].down = true;
        }
        let mut plan = PushPlan::default();
        let events = Self::evacuate(&mut state, &newly_down, self.strategy, &mut plan);
        drop(state);
        plan.send();
        events
    }

    /// Gracefully drain `server_name`: mark it non-schedulable and migrate
    /// as many of its shares as the surviving capacity allows.  Shares with
    /// nowhere to go *stay on the draining server* (it is still up); call
    /// [`DeviceManager::server_load`] to see whether the drain completed,
    /// and [`DeviceManager::remove_server`] to force the leave.
    pub fn drain_server(&self, server_name: &str) -> Result<Vec<LeaseFailover>> {
        let mut state = self.state.lock();
        let index = state
            .servers
            .iter()
            .position(|s| s.name == server_name)
            .ok_or_else(|| DevMgrError::Protocol(format!("unknown server '{server_name}'")))?;
        state.servers[index].draining = true;
        let mut plan = PushPlan::default();
        let events = Self::migrate_off(&mut state, index, self.strategy, false, &mut plan);
        drop(state);
        plan.send();
        Ok(events)
    }

    /// Remove `server_name` from the cluster (the second half of a
    /// graceful leave, or an administrative eviction).  Shares still on it
    /// are failed over like a crash — leases that cannot be made whole
    /// degrade or are released.
    pub fn remove_server(&self, server_name: &str) -> Result<Vec<LeaseFailover>> {
        let mut state = self.state.lock();
        let index = state
            .servers
            .iter()
            .position(|s| s.name == server_name)
            .ok_or_else(|| DevMgrError::Protocol(format!("unknown server '{server_name}'")))?;
        state.servers[index].down = true;
        state.servers[index].draining = true;
        let mut plan = PushPlan::default();
        let events = Self::evacuate(&mut state, &[index], self.strategy, &mut plan);
        // Detach the endpoint only after planning, so the departing daemon
        // still receives the final RevokeLease/UpdateQuota pushes.
        state.servers[index].endpoint = None;
        drop(state);
        plan.send();
        Ok(events)
    }

    /// Revoke the placement of `auth_id` and move every one of its shares
    /// to a *different* server (administrative migration; also the
    /// mechanism behind priority preemption).  The victim's daemons drop
    /// the auth id, the receiving daemons learn it, and watching clients
    /// get a [`DmNotification::LeaseChanged`] push so they can reconnect
    /// and re-validate their buffers through the coherence directory.
    pub fn migrate_lease(&self, auth_id: &str) -> Result<LeaseFailover> {
        let mut state = self.state.lock();
        if !state.leases.contains_key(auth_id) {
            return Err(DevMgrError::UnknownLease(auth_id.to_string()));
        }
        let mut plan = PushPlan::default();
        let event = Self::migrate_lease_locked(&mut state, auth_id, self.strategy, &mut plan)?;
        drop(state);
        plan.send();
        Ok(event)
    }

    // ----- capacity bookkeeping --------------------------------------------

    fn allocated_on(state: &ManagerState, server: usize, device: u64) -> (u32, u64) {
        let allocs = state
            .leases
            .values()
            .flat_map(|l| l.virtual_devices.iter())
            .filter(|vd| vd.server == server && vd.device == device);
        let allocs: Vec<&VirtualDevice> = allocs.collect();
        (allocated_millis(allocs.iter().copied()), allocated_mem(allocs.iter().copied()))
    }

    fn free_capacity(state: &ManagerState, server: usize, device: &DmDevice) -> (u32, u64) {
        let (millis, mem) = Self::allocated_on(state, server, device.remote_id);
        (FULL_COMPUTE_MILLIS.saturating_sub(millis), device.global_mem_bytes.saturating_sub(mem))
    }

    /// Schedulable candidate devices matching `attributes`, in registration
    /// order, excluding `exclude` (devices already picked for the request
    /// in flight — each share of a request lands on a distinct device).
    fn candidates(
        state: &ManagerState,
        attributes: &[(String, String)],
        exclude: &[(usize, u64)],
    ) -> Vec<CandidateDevice> {
        let mut out = Vec::new();
        for (index, server) in state.servers.iter().enumerate() {
            if server.down || server.draining {
                continue;
            }
            for device in &server.devices {
                if exclude.contains(&(index, device.remote_id)) {
                    continue;
                }
                if !attributes.iter().all(|(k, v)| device.satisfies(k, v)) {
                    continue;
                }
                let (free_millis, free_mem) = Self::free_capacity(state, index, device);
                out.push(CandidateDevice {
                    server: index,
                    device: device.remote_id,
                    free_millis,
                    free_mem,
                });
            }
        }
        out
    }

    fn any_matching_device(state: &ManagerState, attributes: &[(String, String)]) -> bool {
        state.servers.iter().any(|s| {
            !s.down && s.devices.iter().any(|d| attributes.iter().all(|(k, v)| d.satisfies(k, v)))
        })
    }

    // ----- diagnostics ------------------------------------------------------

    /// Number of devices (on up servers) without any allocated share.
    pub fn free_device_count(&self) -> usize {
        let state = self.state.lock();
        state
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.down)
            .flat_map(|(i, s)| s.devices.iter().map(move |d| (i, d.remote_id)))
            .filter(|&(i, d)| Self::allocated_on(&state, i, d).0 == 0)
            .count()
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.state.lock().leases.len()
    }

    /// Currently active leases.
    pub fn leases(&self) -> Vec<Lease> {
        self.state.lock().leases.values().cloned().collect()
    }

    /// A single lease by auth id.
    pub fn lease(&self, auth_id: &str) -> Option<Lease> {
        self.state.lock().leases.get(auth_id).cloned()
    }

    /// Diagnostics counters: (free devices, devices with ≥ 1 share, leases).
    pub fn status(&self) -> (u32, u32, u32) {
        let state = self.state.lock();
        let mut assigned = 0u32;
        for (i, server) in state.servers.iter().enumerate() {
            for device in &server.devices {
                if Self::allocated_on(&state, i, device.remote_id).0 > 0 {
                    assigned += 1;
                }
            }
        }
        let free = state
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.down)
            .flat_map(|(i, s)| s.devices.iter().map(move |d| (i, d.remote_id)))
            .filter(|&(i, d)| Self::allocated_on(&state, i, d).0 == 0)
            .count() as u32;
        (free, assigned, state.leases.len() as u32)
    }

    /// The current grants of a lease in wire form (server addresses
    /// resolved), or `None` for an unknown lease.
    pub fn lease_grants(&self, auth_id: &str) -> Option<Vec<DmGrant>> {
        let state = self.state.lock();
        let lease = state.leases.get(auth_id)?;
        Some(
            lease
                .virtual_devices
                .iter()
                .map(|vd| DmGrant {
                    server: state.servers[vd.server].address.clone(),
                    device_id: vd.device,
                    compute_millis: vd.compute_millis,
                    mem_bytes: vd.mem_bytes,
                })
                .collect(),
        )
    }

    fn lease_servers(state: &ManagerState, lease: &Lease) -> Vec<String> {
        let mut servers: Vec<String> = lease
            .virtual_devices
            .iter()
            .map(|vd| state.servers[vd.server].address.clone())
            .collect();
        servers.sort();
        servers.dedup();
        servers
    }

    // ----- assignment -------------------------------------------------------

    /// Handle a legacy whole-device assignment request ([`DmRequirement`]):
    /// every requirement maps to an all-or-nothing share of a full device.
    pub fn assign(
        &self,
        client_name: &str,
        requirements: &[DmRequirement],
    ) -> Result<(Lease, Vec<String>)> {
        let shares: Vec<ShareRequest> = requirements
            .iter()
            .map(|r| ShareRequest::whole_device(r.count, r.attributes.clone()))
            .collect();
        self.assign_shares(client_name, &shares, 0)
    }

    /// Handle a fractional assignment request: place each share under the
    /// active policy, build a lease, push the quotas to the involved
    /// daemons, and return the authentication id plus server addresses.
    ///
    /// Admission control: when matching devices exist but no policy move
    /// can produce every share's floor, the request is rejected with
    /// [`DevMgrError::Saturated`] and the cluster state is left untouched.
    pub fn assign_shares(
        &self,
        client_name: &str,
        requests: &[ShareRequest],
        priority: u32,
    ) -> Result<(Lease, Vec<String>)> {
        if requests.is_empty() {
            return Err(DevMgrError::NoMatchingDevices("empty assignment request".into()));
        }
        let mut state = self.state.lock();
        let mut picked: Vec<VirtualDevice> = Vec::new();
        let mut taken: Vec<(usize, u64)> = Vec::new();
        // Side effects of saturation moves (fair shrinks, preemptions),
        // applied to state immediately and pushed after the lock drops.
        let mut plan = PushPlan::default();

        for request in requests {
            for _ in 0..request.count.max(1) {
                let candidates = Self::candidates(&state, &request.attributes, &taken);
                let placement = sched::place(
                    self.strategy,
                    &candidates,
                    request.compute_millis,
                    request.floor(),
                    request.mem_bytes,
                    state.round_robin_cursor,
                );
                let placement = match placement {
                    Some(p) => p,
                    None => {
                        if !Self::any_matching_device(&state, &request.attributes) {
                            return Err(DevMgrError::NoMatchingDevices(format!(
                                "no device satisfies {:?} for client '{client_name}'",
                                request.attributes
                            )));
                        }
                        let saturation_move = match self.strategy {
                            Strategy::Fair => Self::rebalance_for(
                                &mut state, request, priority, &taken, &mut plan,
                            ),
                            Strategy::Priority => Self::preempt_for(
                                &mut state,
                                request,
                                priority,
                                &taken,
                                self.strategy,
                                &mut plan,
                            ),
                            _ => None,
                        };
                        match saturation_move {
                            Some(p) => p,
                            None => {
                                return Err(DevMgrError::Saturated(format!(
                                    "no capacity for a {} milli share (floor {}) of {:?} \
                                     for client '{client_name}'",
                                    request.compute_millis,
                                    request.floor(),
                                    request.attributes
                                )))
                            }
                        }
                    }
                };
                taken.push((placement.server, placement.device));
                picked.push(VirtualDevice {
                    vd_id: self.next_vd.fetch_add(1, Ordering::Relaxed),
                    server: placement.server,
                    device: placement.device,
                    compute_millis: placement.millis,
                    min_millis: request.floor(),
                    mem_bytes: request.mem_bytes,
                });
            }
        }

        if self.strategy == Strategy::RoundRobin {
            state.round_robin_cursor = state.round_robin_cursor.wrapping_add(1);
        }
        let auth_id = format!("lease-{}", self.next_lease.fetch_add(1, Ordering::Relaxed));
        let lease = Lease {
            auth_id: auth_id.clone(),
            client_name: client_name.to_string(),
            priority,
            virtual_devices: picked.clone(),
        };
        state.leases.insert(auth_id.clone(), lease.clone());

        // Step 3b: send each involved daemon the lease's quotas on its
        // devices.
        let mut per_server: HashMap<usize, Vec<DmQuota>> = HashMap::new();
        for vd in &picked {
            per_server.entry(vd.server).or_default().push(DmQuota {
                device_id: vd.device,
                compute_millis: vd.compute_millis,
                mem_bytes: vd.mem_bytes,
            });
        }
        let mut server_addresses = Vec::new();
        let mut installs = Vec::new();
        for (server_index, shares) in &per_server {
            let server = &state.servers[*server_index];
            server_addresses.push(server.address.clone());
            if let Some(endpoint) = server.endpoint.as_ref().and_then(Weak::upgrade) {
                let note = DmNotification::AssignShares {
                    auth_id: auth_id.clone(),
                    shares: shares.clone(),
                };
                installs.push((endpoint, note));
            }
        }
        // The daemons must know the lease before the client (who connects
        // the moment it has the auth id) presents it, so the install is a
        // synchronous call, issued outside the state lock: the daemon's
        // reply arrives on this manager's session receiver thread, which
        // must stay free to take the lock for unrelated requests.
        drop(state);
        let mut installed: Vec<Arc<Endpoint>> = Vec::new();
        for (endpoint, note) in installs {
            let acked = match endpoint.call(note.to_bytes()) {
                Ok(bytes) => matches!(DmResponse::from_bytes(&bytes), Ok(DmResponse::Ok)),
                Err(_) => false,
            };
            if !acked {
                // A daemon that never learned the auth id would show the
                // client zero devices; hand back an error instead of a
                // lease that cannot be used.  Roll the commit back and tell
                // the daemons that did ack to forget the lease.  (Fair
                // shrinks applied on the way here stay applied — they are
                // valid allocations either way.)
                let mut state = self.state.lock();
                state.leases.remove(&auth_id);
                drop(state);
                let revoke = DmNotification::RevokeLease { auth_id: auth_id.clone() };
                for endpoint in installed {
                    let _ = endpoint.notify(revoke.to_bytes());
                }
                plan.send();
                return Err(DevMgrError::Protocol(format!(
                    "a daemon did not acknowledge lease {auth_id}"
                )));
            }
            installed.push(endpoint);
        }
        // Quota shrinks and watcher notices from saturation moves go out
        // only after the new lease is fully installed.
        plan.send();
        server_addresses.sort();
        Ok((lease, server_addresses))
    }

    /// Fair-policy saturation move: find the device where shrinking every
    /// tenant toward its weighted fair share frees the most room for the
    /// newcomer, apply those shrinks, and return the newcomer's placement.
    fn rebalance_for(
        state: &mut ManagerState,
        request: &ShareRequest,
        priority: u32,
        exclude: &[(usize, u64)],
        plan: &mut PushPlan,
    ) -> Option<Placement> {
        let floor = request.floor();
        let weight = priority.max(1);
        // Evaluate every matching device: what would the newcomer get
        // after a fair rebalance there?
        let mut best: Option<(u32, usize, u64)> = None;
        for cand in Self::candidates(state, &request.attributes, exclude) {
            if cand.free_mem < request.mem_bytes {
                continue;
            }
            let mut demands: Vec<(u32, u32, u32)> = Vec::new();
            for lease in state.leases.values() {
                for vd in &lease.virtual_devices {
                    if vd.server == cand.server && vd.device == cand.device {
                        demands.push((lease.priority.max(1), vd.min_millis, vd.compute_millis));
                    }
                }
            }
            demands.push((weight, floor, request.compute_millis));
            if demands.iter().map(|d| d.1).sum::<u32>() > FULL_COMPUTE_MILLIS {
                continue; // floors alone exceed the device
            }
            let grants = sched::fair_shares(FULL_COMPUTE_MILLIS, &demands);
            let newcomer = *grants.last().expect("newcomer demand present");
            if newcomer < floor {
                continue;
            }
            if best.map(|(g, _, _)| newcomer > g).unwrap_or(true) {
                best = Some((newcomer, cand.server, cand.device));
            }
        }
        let (_, server, device) = best?;

        // Re-run the division on the chosen device and apply the shrinks
        // (only ever shrink — growing other tenants here would oscillate).
        let mut demands: Vec<(u32, u32, u32)> = Vec::new();
        let mut slots: Vec<(String, usize)> = Vec::new(); // (auth, vd index)
        for (auth, lease) in state.leases.iter() {
            for (i, vd) in lease.virtual_devices.iter().enumerate() {
                if vd.server == server && vd.device == device {
                    demands.push((lease.priority.max(1), vd.min_millis, vd.compute_millis));
                    slots.push((auth.clone(), i));
                }
            }
        }
        demands.push((weight, floor, request.compute_millis));
        let grants = sched::fair_shares(FULL_COMPUTE_MILLIS, &demands);
        let mut shrunk: Vec<String> = Vec::new();
        for (slot, (auth, vd_index)) in slots.iter().enumerate() {
            let new_grant = grants[slot];
            let lease = state.leases.get_mut(auth).expect("lease listed");
            let vd = &mut lease.virtual_devices[*vd_index];
            if new_grant < vd.compute_millis {
                vd.compute_millis = new_grant;
                shrunk.push(auth.clone());
            }
        }
        let descriptor = state.servers[server]
            .devices
            .iter()
            .find(|d| d.remote_id == device)
            .expect("device present")
            .clone();
        let (free_millis, _) = Self::free_capacity(state, server, &descriptor);
        if free_millis < floor {
            return None; // arithmetic safety net; floors were checked above
        }
        // Tell the affected daemons and watching clients.
        for auth in shrunk {
            Self::plan_quota_update(state, &auth, server, plan);
            Self::plan_lease_changed(state, &auth, LeaseChangeReason::Shrunk, plan);
        }
        Some(Placement { server, device, millis: request.compute_millis.min(free_millis) })
    }

    /// Priority-policy saturation move: on the best matching device, shrink
    /// shares of strictly lower-priority leases to their floors, then — if
    /// still short — revoke them entirely, migrating each victim share to
    /// another device where capacity allows.
    fn preempt_for(
        state: &mut ManagerState,
        request: &ShareRequest,
        priority: u32,
        exclude: &[(usize, u64)],
        strategy: Strategy,
        plan: &mut PushPlan,
    ) -> Option<Placement> {
        let floor = request.floor();
        // Pick the device where lower-priority tenants hold the most
        // reclaimable capacity.
        let mut best: Option<(u32, usize, u64)> = None;
        for cand in Self::candidates(state, &request.attributes, exclude) {
            if cand.free_mem < request.mem_bytes {
                continue;
            }
            let reclaimable: u32 = state
                .leases
                .values()
                .filter(|l| l.priority < priority)
                .flat_map(|l| l.virtual_devices.iter())
                .filter(|vd| vd.server == cand.server && vd.device == cand.device)
                .map(|vd| vd.compute_millis)
                .sum();
            let potential = cand.free_millis + reclaimable;
            if potential < floor {
                continue;
            }
            if best.map(|(p, _, _)| potential > p).unwrap_or(true) {
                best = Some((potential, cand.server, cand.device));
            }
        }
        let (_, server, device) = best?;

        // Victims on the chosen device, lowest priority first.
        let mut victims: Vec<(u32, String, u64)> = state
            .leases
            .iter()
            .filter(|(_, l)| l.priority < priority)
            .flat_map(|(auth, l)| {
                l.virtual_devices
                    .iter()
                    .filter(|vd| vd.server == server && vd.device == device)
                    .map(|vd| (l.priority, auth.clone(), vd.vd_id))
                    .collect::<Vec<_>>()
            })
            .collect();
        victims.sort_by_key(|(prio, _, _)| *prio);
        let victims: Vec<(String, u64)> =
            victims.into_iter().map(|(_, auth, vd_id)| (auth, vd_id)).collect();

        let descriptor = state.servers[server]
            .devices
            .iter()
            .find(|d| d.remote_id == device)
            .expect("device present")
            .clone();
        let free = |state: &ManagerState| Self::free_capacity(state, server, &descriptor).0;

        // Stage 1: shrink victims to their floors.
        for (auth, vd_id) in &victims {
            if free(state) >= floor {
                break;
            }
            let lease = state.leases.get_mut(auth).expect("victim lease");
            if let Some(vd) = lease.virtual_devices.iter_mut().find(|vd| vd.vd_id == *vd_id) {
                if vd.compute_millis > vd.min_millis {
                    vd.compute_millis = vd.min_millis;
                    Self::plan_quota_update(state, auth, server, plan);
                    Self::plan_lease_changed(state, auth, LeaseChangeReason::Shrunk, plan);
                }
            }
        }
        // Stage 2: revoke remaining victims outright, migrating each share
        // elsewhere when possible.
        for (auth, vd_id) in &victims {
            if free(state) >= floor {
                break;
            }
            Self::evict_share(state, auth, *vd_id, strategy, plan);
        }
        let available = free(state);
        if available < floor {
            return None;
        }
        Some(Placement { server, device, millis: request.compute_millis.min(available) })
    }

    /// Remove one share from a lease and try to re-place it on another
    /// device (same device type); the lease degrades (or is released) when
    /// no capacity exists.
    fn evict_share(
        state: &mut ManagerState,
        auth_id: &str,
        vd_id: u64,
        strategy: Strategy,
        plan: &mut PushPlan,
    ) {
        let Some(lease) = state.leases.get(auth_id) else { return };
        let Some(vd) = lease.virtual_devices.iter().find(|vd| vd.vd_id == vd_id).cloned() else {
            return;
        };
        let old_server = vd.server;
        let wanted_type = state.servers[vd.server]
            .devices
            .iter()
            .find(|d| d.remote_id == vd.device)
            .map(|d| d.device_type.clone());

        // Take the share out first so its own capacity does not mask the
        // search (it must land on a *different* device).
        state
            .leases
            .get_mut(auth_id)
            .expect("lease present")
            .virtual_devices
            .retain(|v| v.vd_id != vd_id);

        let attributes: Vec<(String, String)> =
            wanted_type.map(|t| vec![("TYPE".to_string(), t)]).unwrap_or_default();
        let exclude = [(vd.server, vd.device)];
        let candidates = Self::candidates(state, &attributes, &exclude);
        let placement = sched::place(
            strategy,
            &candidates,
            vd.compute_millis,
            vd.min_millis.max(1),
            vd.mem_bytes,
            0,
        );

        let lease = state.leases.get_mut(auth_id).expect("lease present");
        let reason = match placement {
            Some(p) => {
                lease.virtual_devices.push(VirtualDevice {
                    vd_id,
                    server: p.server,
                    device: p.device,
                    compute_millis: p.millis,
                    min_millis: vd.min_millis,
                    mem_bytes: vd.mem_bytes,
                });
                Self::plan_assign(state, auth_id, p.server, plan);
                LeaseChangeReason::Migrated
            }
            None => LeaseChangeReason::Revoked,
        };
        Self::plan_quota_update(state, auth_id, old_server, plan);
        if state.leases.get(auth_id).map(|l| l.virtual_devices.is_empty()).unwrap_or(false) {
            Self::plan_release(state, auth_id, plan);
            state.leases.remove(auth_id);
            state.watchers.remove(auth_id);
        } else {
            Self::plan_lease_changed(state, auth_id, reason, plan);
        }
    }

    /// Move every share hosted on `server_index` somewhere else, where
    /// capacity allows.  With `forced` the shares that cannot move are
    /// dropped (crash/remove semantics); without it they stay (drain
    /// semantics).
    fn migrate_off(
        state: &mut ManagerState,
        server_index: usize,
        strategy: Strategy,
        forced: bool,
        plan: &mut PushPlan,
    ) -> Vec<LeaseFailover> {
        let lease_ids: Vec<String> = state.leases.keys().cloned().collect();
        let mut events = Vec::new();
        for auth_id in lease_ids {
            let affected: Vec<VirtualDevice> = state
                .leases
                .get(&auth_id)
                .map(|l| {
                    l.virtual_devices
                        .iter()
                        .filter(|vd| vd.server == server_index)
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            if affected.is_empty() {
                continue;
            }
            let mut moved: Vec<(usize, u64)> = Vec::new();
            let mut degraded = false;
            for vd in affected {
                let wanted_type = state.servers[vd.server]
                    .devices
                    .iter()
                    .find(|d| d.remote_id == vd.device)
                    .map(|d| d.device_type.clone());
                let attributes: Vec<(String, String)> =
                    wanted_type.map(|t| vec![("TYPE".to_string(), t)]).unwrap_or_default();
                let candidates = Self::candidates(state, &attributes, &[]);
                let placement = sched::place(
                    strategy,
                    &candidates,
                    vd.compute_millis,
                    vd.min_millis.max(1),
                    vd.mem_bytes,
                    0,
                );
                let lease = state.leases.get_mut(&auth_id).expect("lease present");
                match placement {
                    Some(p) => {
                        let slot = lease
                            .virtual_devices
                            .iter_mut()
                            .find(|v| v.vd_id == vd.vd_id)
                            .expect("share present");
                        slot.server = p.server;
                        slot.device = p.device;
                        slot.compute_millis = p.millis;
                        moved.push((p.server, p.device));
                        Self::plan_assign(state, &auth_id, p.server, plan);
                    }
                    None if forced => {
                        lease.virtual_devices.retain(|v| v.vd_id != vd.vd_id);
                        degraded = true;
                    }
                    None => degraded = true, // drain: the share stays put
                }
            }
            let emptied =
                state.leases.get(&auth_id).map(|l| l.virtual_devices.is_empty()).unwrap_or(false);
            if emptied {
                Self::plan_release(state, &auth_id, plan);
                state.leases.remove(&auth_id);
                state.watchers.remove(&auth_id);
            } else if !moved.is_empty() || (forced && degraded) {
                // The vacated daemon must drop its quota entry, or it would
                // later report a (legitimate) client disconnect and release
                // the lease out from under the node it migrated to.
                Self::plan_quota_update(state, &auth_id, server_index, plan);
                let reason = if moved.is_empty() {
                    LeaseChangeReason::Revoked
                } else {
                    LeaseChangeReason::Migrated
                };
                Self::plan_lease_changed(state, &auth_id, reason, plan);
            }
            if !moved.is_empty() || degraded {
                events.push(LeaseFailover { auth_id: auth_id.clone(), moved, degraded });
            }
        }
        events
    }

    /// Crash-style evacuation of every share on the given (already
    /// down-marked) servers.
    fn evacuate(
        state: &mut ManagerState,
        dead: &[usize],
        strategy: Strategy,
        plan: &mut PushPlan,
    ) -> Vec<LeaseFailover> {
        let mut events: Vec<LeaseFailover> = Vec::new();
        for &index in dead {
            for event in Self::migrate_off(state, index, strategy, true, plan) {
                match events.iter_mut().find(|e| e.auth_id == event.auth_id) {
                    Some(existing) => {
                        existing.moved.extend(event.moved);
                        existing.degraded |= event.degraded;
                    }
                    None => events.push(event),
                }
            }
        }
        events
    }

    fn migrate_lease_locked(
        state: &mut ManagerState,
        auth_id: &str,
        strategy: Strategy,
        plan: &mut PushPlan,
    ) -> Result<LeaseFailover> {
        let shares: Vec<VirtualDevice> =
            state.leases.get(auth_id).map(|l| l.virtual_devices.clone()).unwrap_or_default();
        let mut moved: Vec<(usize, u64)> = Vec::new();
        let mut degraded = false;
        let mut old_servers: Vec<usize> = Vec::new();
        for vd in shares {
            old_servers.push(vd.server);
            let wanted_type = state.servers[vd.server]
                .devices
                .iter()
                .find(|d| d.remote_id == vd.device)
                .map(|d| d.device_type.clone());
            let attributes: Vec<(String, String)> =
                wanted_type.map(|t| vec![("TYPE".to_string(), t)]).unwrap_or_default();
            // Migration means *another node*: exclude every device of the
            // share's current server.
            let exclude: Vec<(usize, u64)> =
                state.servers[vd.server].devices.iter().map(|d| (vd.server, d.remote_id)).collect();
            let candidates = Self::candidates(state, &attributes, &exclude);
            let placement = sched::place(
                strategy,
                &candidates,
                vd.compute_millis,
                vd.min_millis.max(1),
                vd.mem_bytes,
                0,
            );
            match placement {
                Some(p) => {
                    let lease = state.leases.get_mut(auth_id).expect("lease present");
                    let slot = lease
                        .virtual_devices
                        .iter_mut()
                        .find(|v| v.vd_id == vd.vd_id)
                        .expect("share present");
                    slot.server = p.server;
                    slot.device = p.device;
                    slot.compute_millis = p.millis;
                    moved.push((p.server, p.device));
                    Self::plan_assign(state, auth_id, p.server, plan);
                }
                None => degraded = true,
            }
        }
        if moved.is_empty() {
            return Err(DevMgrError::Saturated(format!(
                "no capacity on other nodes to migrate lease {auth_id}"
            )));
        }
        old_servers.sort_unstable();
        old_servers.dedup();
        for server in old_servers {
            Self::plan_quota_update(state, auth_id, server, plan);
        }
        Self::plan_lease_changed(state, auth_id, LeaseChangeReason::Migrated, plan);
        Ok(LeaseFailover { auth_id: auth_id.to_string(), moved, degraded })
    }

    // ----- push planning ----------------------------------------------------

    /// Plan an acknowledged AssignShares install of `auth_id`'s current
    /// quotas on `server` (the daemon must know the lease before the client
    /// presents it).
    fn plan_assign(state: &ManagerState, auth_id: &str, server: usize, plan: &mut PushPlan) {
        let Some(lease) = state.leases.get(auth_id) else { return };
        let shares: Vec<DmQuota> = lease
            .virtual_devices
            .iter()
            .filter(|vd| vd.server == server)
            .map(|vd| DmQuota {
                device_id: vd.device,
                compute_millis: vd.compute_millis,
                mem_bytes: vd.mem_bytes,
            })
            .collect();
        if shares.is_empty() {
            return;
        }
        if let Some(endpoint) = state.servers[server].endpoint.as_ref().and_then(Weak::upgrade) {
            plan.call(
                endpoint,
                &DmNotification::AssignShares { auth_id: auth_id.to_string(), shares },
            );
        }
    }

    /// Plan a fire-and-forget quota refresh of `auth_id` on `server`:
    /// devices the lease no longer uses there are zeroed out.
    fn plan_quota_update(state: &ManagerState, auth_id: &str, server: usize, plan: &mut PushPlan) {
        let Some(endpoint) = state.servers[server].endpoint.as_ref().and_then(Weak::upgrade) else {
            return;
        };
        let current: Vec<DmQuota> = state
            .leases
            .get(auth_id)
            .map(|l| {
                l.virtual_devices
                    .iter()
                    .filter(|vd| vd.server == server)
                    .map(|vd| DmQuota {
                        device_id: vd.device,
                        compute_millis: vd.compute_millis,
                        mem_bytes: vd.mem_bytes,
                    })
                    .collect()
            })
            .unwrap_or_default();
        // Zero out every device of this server the lease no longer holds.
        let mut quotas = current;
        for device in &state.servers[server].devices {
            if !quotas.iter().any(|q| q.device_id == device.remote_id) {
                quotas.push(DmQuota {
                    device_id: device.remote_id,
                    compute_millis: 0,
                    mem_bytes: 0,
                });
            }
        }
        plan.notify(
            endpoint,
            &DmNotification::UpdateQuota { auth_id: auth_id.to_string(), quotas },
        );
    }

    /// Plan RevokeLease notifies to every daemon still holding `auth_id`.
    fn plan_release(state: &ManagerState, auth_id: &str, plan: &mut PushPlan) {
        // When the lease's shares were already stripped (forced eviction)
        // the hosting set is unknown here — notify every daemon; revoking
        // an auth id a daemon never held is harmless.
        let involved: Vec<usize> = match state.leases.get(auth_id) {
            Some(l) if !l.virtual_devices.is_empty() => {
                l.virtual_devices.iter().map(|vd| vd.server).collect()
            }
            _ => (0..state.servers.len()).collect(),
        };
        let mut involved = involved;
        involved.sort_unstable();
        involved.dedup();
        for server in involved {
            if let Some(endpoint) = state.servers[server].endpoint.as_ref().and_then(Weak::upgrade)
            {
                plan.notify(
                    endpoint,
                    &DmNotification::RevokeLease { auth_id: auth_id.to_string() },
                );
            }
        }
        // Watchers learn the lease is gone.
        if let Some(watchers) = state.watchers.get(auth_id) {
            for w in watchers {
                if let Some(endpoint) = w.upgrade() {
                    plan.notify(
                        endpoint,
                        &DmNotification::LeaseChanged {
                            auth_id: auth_id.to_string(),
                            servers: Vec::new(),
                            reason: LeaseChangeReason::Revoked,
                        },
                    );
                }
            }
        }
    }

    /// Plan LeaseChanged notifies to every watcher of `auth_id`.
    fn plan_lease_changed(
        state: &ManagerState,
        auth_id: &str,
        reason: LeaseChangeReason,
        plan: &mut PushPlan,
    ) {
        let Some(watchers) = state.watchers.get(auth_id) else { return };
        let servers =
            state.leases.get(auth_id).map(|l| Self::lease_servers(state, l)).unwrap_or_default();
        for w in watchers {
            if let Some(endpoint) = w.upgrade() {
                plan.notify(
                    endpoint,
                    &DmNotification::LeaseChanged {
                        auth_id: auth_id.to_string(),
                        servers: servers.clone(),
                        reason,
                    },
                );
            }
        }
    }

    /// Subscribe `endpoint` to lease-change pushes for `auth_id`.
    pub fn watch_lease(&self, auth_id: &str, endpoint: Weak<Endpoint>) -> Result<()> {
        let mut state = self.state.lock();
        if !state.leases.contains_key(auth_id) {
            return Err(DevMgrError::UnknownLease(auth_id.to_string()));
        }
        state.watchers.entry(auth_id.to_string()).or_default().push(endpoint);
        Ok(())
    }

    /// Release a lease: its shares return to the pool and the involved
    /// daemons are told to discard the authentication id.
    pub fn release(&self, auth_id: &str) -> Result<()> {
        let mut state = self.state.lock();
        if !state.leases.contains_key(auth_id) {
            return Err(DevMgrError::UnknownLease(auth_id.to_string()));
        }
        let mut plan = PushPlan::default();
        Self::plan_release(&state, auth_id, &mut plan);
        state.leases.remove(auth_id);
        state.watchers.remove(auth_id);
        // Revocation stays fire-and-forget: release() may run on a daemon
        // session's own receiver thread (ReportDisconnect), where a
        // synchronous call back over that endpoint could never see its
        // reply.  The reporting daemon drops the auth id locally anyway;
        // the allocation bookkeeping above is what must be (and is) atomic.
        drop(state);
        plan.send();
        Ok(())
    }
}

/// The network front end of the device manager: accepts connections from
/// daemons and clients and serves the [`DmRequest`] protocol.
pub struct DeviceManagerServer {
    manager: Arc<DeviceManager>,
    address: String,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<Arc<Endpoint>>>>,
}

impl DeviceManagerServer {
    /// Start the device manager listening at `address`.
    pub fn start(
        manager: Arc<DeviceManager>,
        transport: Arc<dyn Transport>,
        address: &str,
    ) -> Result<Arc<DeviceManagerServer>> {
        let listener = transport.listen(address)?;
        let bound = listener.local_addr();
        let server = Arc::new(DeviceManagerServer {
            manager,
            address: bound,
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Arc::new(Mutex::new(Vec::new())),
        });
        let weak = Arc::downgrade(&server);
        std::thread::Builder::new()
            .name("devmgr-accept".to_string())
            .spawn(move || Self::accept_loop(weak, listener))
            .map_err(|e| DevMgrError::Protocol(format!("cannot spawn accept thread: {e}")))?;
        Ok(server)
    }

    fn accept_loop(server: Weak<DeviceManagerServer>, listener: Box<dyn Listener>) {
        loop {
            let Some(strong) = server.upgrade() else { break };
            if strong.shutdown.load(Ordering::Acquire) {
                break;
            }
            drop(strong);
            let Ok(conn) = listener.accept() else { break };
            let Some(strong) = server.upgrade() else { break };
            let session = Arc::new(DmSession {
                manager: Arc::clone(&strong.manager),
                endpoint: Mutex::new(None),
            });
            // The session must know its endpoint before the receiver thread
            // dispatches the first request: a daemon's RegisterServer
            // arriving earlier would register with no endpoint, and every
            // lease install to that server would be silently skipped.
            let endpoint = Endpoint::new_init(
                conn,
                Arc::clone(&session) as Arc<dyn EndpointHandler>,
                "devmgr",
                |ep| *session.endpoint.lock() = Some(Arc::downgrade(ep)),
            );
            strong.sessions.lock().push(endpoint);
        }
    }

    /// The address the device manager listens at.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// The underlying registry (for inspection).
    pub fn manager(&self) -> &Arc<DeviceManager> {
        &self.manager
    }

    /// Stop accepting connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

struct DmSession {
    manager: Arc<DeviceManager>,
    endpoint: Mutex<Option<Weak<Endpoint>>>,
}

impl DmSession {
    fn handle(&self, request: DmRequest) -> DmResponse {
        match request {
            DmRequest::RegisterServer { server_name, address, devices } => {
                let endpoint = self.endpoint.lock().clone();
                self.manager.register_server(&server_name, &address, devices, endpoint);
                DmResponse::Ok
            }
            DmRequest::RequestAssignment { client_name, requirements } => {
                match self.manager.assign(&client_name, &requirements) {
                    Ok((lease, servers)) => {
                        DmResponse::Assignment { auth_id: lease.auth_id, servers }
                    }
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::RequestShares { client_name, priority, shares } => {
                let requests: Vec<ShareRequest> = shares.iter().map(ShareRequest::from).collect();
                match self.manager.assign_shares(&client_name, &requests, priority) {
                    Ok((lease, servers)) => {
                        DmResponse::Assignment { auth_id: lease.auth_id, servers }
                    }
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::ReleaseLease { auth_id } | DmRequest::ReportDisconnect { auth_id } => {
                match self.manager.release(&auth_id) {
                    Ok(()) => DmResponse::Ok,
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::GetStatus => {
                let (free_devices, assigned_devices, leases) = self.manager.status();
                DmResponse::Status { free_devices, assigned_devices, leases }
            }
            DmRequest::Heartbeat { server_name } => {
                if self.manager.heartbeat(&server_name) {
                    DmResponse::Ok
                } else {
                    DmResponse::Error { message: format!("unknown server '{server_name}'") }
                }
            }
            DmRequest::DrainServer { server_name } => {
                match self.manager.drain_server(&server_name) {
                    Ok(_) => DmResponse::Ok,
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::RemoveServer { server_name } => {
                match self.manager.remove_server(&server_name) {
                    Ok(_) => DmResponse::Ok,
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::GetLease { auth_id } => match self.manager.lease_grants(&auth_id) {
                Some(grants) => DmResponse::LeaseInfo { auth_id, grants },
                None => DmResponse::Error { message: format!("unknown lease: {auth_id}") },
            },
            DmRequest::WatchLease { auth_id } => {
                let endpoint = self.endpoint.lock().clone();
                match endpoint {
                    Some(weak) => match self.manager.watch_lease(&auth_id, weak) {
                        Ok(()) => DmResponse::Ok,
                        Err(e) => DmResponse::Error { message: e.to_string() },
                    },
                    None => DmResponse::Error { message: "session has no endpoint".into() },
                }
            }
        }
    }
}

impl EndpointHandler for DmSession {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        let response = match DmRequest::from_bytes(payload) {
            Ok(request) => self.handle(request),
            Err(e) => DmResponse::Error { message: format!("malformed request: {e}") },
        };
        response.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(id: u64) -> DmDevice {
        DmDevice {
            remote_id: id,
            name: format!("GPU {id}"),
            vendor: "NVIDIA".into(),
            device_type: "GPU".into(),
            compute_units: 30,
            global_mem_bytes: 4 << 30,
        }
    }

    fn cpu(id: u64) -> DmDevice {
        DmDevice {
            remote_id: id,
            name: format!("CPU {id}"),
            vendor: "Intel".into(),
            device_type: "CPU".into(),
            compute_units: 8,
            global_mem_bytes: 16 << 30,
        }
    }

    fn gpu_requirement() -> DmRequirement {
        DmRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }
    }

    fn gpu_share(desired: u32, min: u32) -> ShareRequest {
        ShareRequest {
            count: 1,
            attributes: vec![("TYPE".into(), "GPU".into())],
            compute_millis: desired,
            min_millis: min,
            mem_bytes: 0,
        }
    }

    #[test]
    fn assignment_creates_lease_and_removes_from_free_set() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("srv", "srv-addr", vec![gpu(1), gpu(2), cpu(3)], None);
        assert_eq!(dm.free_device_count(), 3);
        let (lease, servers) = dm.assign("client-a", &[gpu_requirement()]).unwrap();
        assert_eq!(servers, vec!["srv-addr".to_string()]);
        assert_eq!(lease.physical_devices().len(), 1);
        assert_eq!(lease.granted_millis(), FULL_COMPUTE_MILLIS);
        assert_eq!(dm.free_device_count(), 2);
        assert_eq!(dm.lease_count(), 1);
        dm.release(&lease.auth_id).unwrap();
        assert_eq!(dm.free_device_count(), 3);
        assert_eq!(dm.lease_count(), 0);
        assert!(dm.release(&lease.auth_id).is_err());
    }

    #[test]
    fn concurrent_clients_get_distinct_devices() {
        // The Figure 6 scenario: four clients each requesting one GPU of a
        // 4-GPU server must end up on four different devices.
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("gpuserver", "gpuserver", vec![gpu(1), gpu(2), gpu(3), gpu(4)], None);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            let (lease, _) = dm.assign(&format!("client-{i}"), &[gpu_requirement()]).unwrap();
            for d in lease.physical_devices() {
                assert!(seen.insert(d), "device {d:?} assigned twice");
            }
        }
        // A fifth whole-device client is rejected by admission control.
        assert!(matches!(
            dm.assign("client-4", &[gpu_requirement()]),
            Err(DevMgrError::Saturated(_))
        ));
    }

    #[test]
    fn attribute_constraints_are_respected() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("srv", "srv", vec![gpu(1), cpu(2)], None);
        let req = DmRequirement {
            count: 1,
            attributes: vec![("TYPE".into(), "CPU".into()), ("VENDOR".into(), "Intel".into())],
        };
        let (lease, _) = dm.assign("c", &[req]).unwrap();
        assert_eq!(lease.physical_devices(), vec![(0, 2)]);
        // Requesting 2 CPUs now fails (only one existed and it is taken).
        let req = DmRequirement { count: 2, attributes: vec![("TYPE".into(), "CPU".into())] };
        assert!(dm.assign("c2", &[req]).is_err());
    }

    #[test]
    fn round_robin_spreads_across_servers() {
        let dm = DeviceManager::new(Strategy::RoundRobin);
        dm.register_server("a", "a", vec![gpu(1), gpu(2)], None);
        dm.register_server("b", "b", vec![gpu(10), gpu(11)], None);
        let (l1, _) = dm.assign("c1", &[gpu_requirement()]).unwrap();
        let (l2, _) = dm.assign("c2", &[gpu_requirement()]).unwrap();
        assert_ne!(
            l1.physical_devices()[0],
            l2.physical_devices()[0],
            "round robin must not reuse the same device"
        );
    }

    #[test]
    fn multi_server_lease_lists_all_servers() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "addr-a", vec![gpu(1)], None);
        dm.register_server("b", "addr-b", vec![gpu(2)], None);
        let req = DmRequirement { count: 2, attributes: vec![("TYPE".into(), "GPU".into())] };
        let (lease, servers) = dm.assign("c", &[req]).unwrap();
        assert_eq!(lease.physical_devices().len(), 2);
        assert_eq!(servers, vec!["addr-a".to_string(), "addr-b".to_string()]);
    }

    #[test]
    fn reregistration_keeps_assignments() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "addr-a", vec![gpu(1)], None);
        let (lease, _) = dm.assign("c", &[gpu_requirement()]).unwrap();
        // Daemon restarts and re-registers: device stays assigned.
        dm.register_server("a", "addr-a2", vec![gpu(1)], None);
        assert_eq!(dm.free_device_count(), 0);
        dm.release(&lease.auth_id).unwrap();
        assert_eq!(dm.free_device_count(), 1);
    }

    #[test]
    fn empty_request_is_rejected() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        assert!(dm.assign("c", &[]).is_err());
    }

    #[test]
    fn status_counts() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1), gpu(2)], None);
        dm.assign("c", &[gpu_requirement()]).unwrap();
        assert_eq!(dm.status(), (1, 1, 1));
    }

    // ----- fractional shares ------------------------------------------------

    #[test]
    fn fractional_shares_pack_onto_one_device() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        let (l1, _) = dm.assign_shares("c1", &[gpu_share(400, 100)], 0).unwrap();
        let (l2, _) = dm.assign_shares("c2", &[gpu_share(400, 100)], 0).unwrap();
        assert_eq!(l1.granted_millis(), 400);
        assert_eq!(l2.granted_millis(), 400);
        // Both shares live on the same physical device; the sum never
        // exceeds 100%.
        assert_eq!(l1.physical_devices(), l2.physical_devices());
        // A third client still fits (200 left), a fourth does not.
        let (l3, _) = dm.assign_shares("c3", &[gpu_share(400, 100)], 0).unwrap();
        assert_eq!(l3.granted_millis(), 200, "grant capped by remaining capacity");
        assert!(matches!(
            dm.assign_shares("c4", &[gpu_share(400, 100)], 0),
            Err(DevMgrError::Saturated(_))
        ));
    }

    #[test]
    fn memory_quotas_gate_admission() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        let mut req = gpu_share(100, 100);
        req.mem_bytes = 3 << 30;
        dm.assign_shares("c1", &[req.clone()], 0).unwrap();
        // 4 GiB device, 3 GiB taken: a second 3 GiB quota cannot fit even
        // though compute is plentiful.
        assert!(matches!(dm.assign_shares("c2", &[req], 0), Err(DevMgrError::Saturated(_))));
    }

    #[test]
    fn fair_rebalances_existing_grants_to_admit_newcomers() {
        let dm = DeviceManager::new(Strategy::Fair);
        dm.register_server("a", "a", vec![gpu(1)], None);
        let (l1, _) = dm.assign_shares("c1", &[gpu_share(1000, 100)], 0).unwrap();
        assert_eq!(l1.granted_millis(), 1000);
        // The device is full; a fair newcomer shrinks c1 instead of being
        // rejected.
        let (l2, _) = dm.assign_shares("c2", &[gpu_share(1000, 100)], 0).unwrap();
        let g1 = dm.lease(&l1.auth_id).unwrap().granted_millis();
        let g2 = l2.granted_millis();
        assert_eq!(g1 + g2, 1000, "shares still sum to the device");
        let (max, min) = (g1.max(g2) as f64, g1.min(g2) as f64);
        assert!(max / min <= 2.0, "fair split was {g1}/{g2}");
        // Floors are honoured: tenants with high floors eventually saturate.
        let mut leases = vec![l1.auth_id.clone(), l2.auth_id];
        for i in 3..=10 {
            match dm.assign_shares(&format!("c{i}"), &[gpu_share(1000, 100)], 0) {
                Ok((l, _)) => leases.push(l.auth_id),
                Err(DevMgrError::Saturated(_)) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let total: u32 =
            leases.iter().filter_map(|id| dm.lease(id)).map(|l| l.granted_millis()).sum();
        assert!(total <= 1000, "oversubscribed: {total}");
    }

    #[test]
    fn priority_preempts_lower_priority_leases() {
        let dm = DeviceManager::new(Strategy::Priority);
        dm.register_server("a", "a", vec![gpu(1)], None);
        dm.register_server("b", "b", vec![gpu(2)], None);
        // A low-priority tenant fills device 1 (FirstFit placement).
        let (low, _) = dm.assign_shares("low", &[gpu_share(1000, 200)], 0).unwrap();
        assert_eq!(low.granted_millis(), 1000);
        // A high-priority tenant wanting a whole device shrinks the victim
        // to its floor — and the victim's share survives at 200 on some
        // device.
        let (high, _) = dm.assign_shares("high", &[gpu_share(800, 800)], 5).unwrap();
        assert_eq!(high.granted_millis(), 800);
        let low_now = dm.lease(&low.auth_id).unwrap();
        assert!(low_now.granted_millis() >= 200, "victim shrunk below its floor");
        // Total allocation on device 1 stays within capacity.
        let total: u32 = dm
            .leases()
            .iter()
            .flat_map(|l| l.virtual_devices.clone())
            .filter(|vd| vd.server == 0 && vd.device == 1)
            .map(|vd| vd.compute_millis)
            .sum();
        assert!(total <= 1000, "device 1 oversubscribed: {total}");
        // An equal-priority newcomer cannot preempt the high tenant once
        // everything is full.
        let (_, _) = dm.assign_shares("mid", &[gpu_share(1000, 1000)], 5).unwrap();
        assert!(matches!(
            dm.assign_shares("late", &[gpu_share(1000, 1000)], 5),
            Err(DevMgrError::Saturated(_))
        ));
    }

    #[test]
    fn drain_migrates_shares_and_empties_the_server() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        dm.register_server("b", "b", vec![gpu(2)], None);
        let (lease, _) = dm.assign_shares("c", &[gpu_share(500, 100)], 0).unwrap();
        assert_eq!(lease.physical_devices(), vec![(0, 1)]);
        let events = dm.drain_server("a").unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].moved, vec![(1, 2)]);
        assert!(!events[0].degraded);
        assert_eq!(dm.server_load("a"), Some(0), "drained server is empty");
        assert_eq!(dm.lease(&lease.auth_id).unwrap().physical_devices(), vec![(1, 2)]);
        // No new placements land on a draining server.
        let (l2, _) = dm.assign_shares("c2", &[gpu_share(100, 100)], 0).unwrap();
        assert_eq!(l2.physical_devices()[0].0, 1);
        dm.remove_server("a").unwrap();
        assert_eq!(dm.server_health()[0], ("a".to_string(), false));
    }

    #[test]
    fn drain_without_capacity_keeps_shares_in_place() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        let (lease, _) = dm.assign_shares("c", &[gpu_share(500, 100)], 0).unwrap();
        let events = dm.drain_server("a").unwrap();
        // Nowhere to go: the share stays, the drain reports it.
        assert_eq!(events.len(), 1);
        assert!(events[0].moved.is_empty());
        assert!(events[0].degraded);
        assert_eq!(dm.server_load("a"), Some(500));
        assert_eq!(dm.lease(&lease.auth_id).unwrap().physical_devices(), vec![(0, 1)]);
    }

    #[test]
    fn migrate_lease_moves_to_another_node() {
        let dm = DeviceManager::new(Strategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        dm.register_server("b", "b", vec![gpu(2)], None);
        let (lease, _) = dm.assign_shares("c", &[gpu_share(600, 100)], 0).unwrap();
        assert_eq!(lease.physical_devices(), vec![(0, 1)]);
        let event = dm.migrate_lease(&lease.auth_id).unwrap();
        assert_eq!(event.moved, vec![(1, 2)]);
        assert_eq!(dm.lease(&lease.auth_id).unwrap().physical_devices(), vec![(1, 2)]);
        // With no other node, migration is refused (not silently dropped).
        let dm2 = DeviceManager::new(Strategy::FirstFit);
        dm2.register_server("only", "only", vec![gpu(1)], None);
        let (l2, _) = dm2.assign_shares("c", &[gpu_share(600, 100)], 0).unwrap();
        assert!(matches!(dm2.migrate_lease(&l2.auth_id), Err(DevMgrError::Saturated(_))));
    }
}
