//! The central device manager (Section IV of the paper).
//!
//! The device manager maintains two sets of devices — *free* and *assigned*
//! — and turns assignment requests into **leases**: a unique authentication
//! id, a set of devices, and the set of servers owning those devices.  The
//! lease's device subsets are pushed to the involved daemons (step 3b of
//! Figure 2), and the client receives the authentication id plus server list
//! (step 3a) so it can connect and present the id.

use crate::error::{DevMgrError, Result};
use crate::protocol::{DmDevice, DmNotification, DmRequest, DmRequirement, DmResponse};
use gcf::rpc::{Endpoint, EndpointHandler};
use gcf::transport::{Listener, Transport};
use gcf::wire::{Decode, Encode};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// How free devices are picked for a lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingStrategy {
    /// Walk the servers in registration order and take the first matching
    /// free devices.
    #[default]
    FirstFit,
    /// Spread assignments across servers round-robin, so concurrent clients
    /// land on different servers/devices (the behaviour Figure 6 relies on).
    RoundRobin,
}

/// A granted lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The unique authentication id.
    pub auth_id: String,
    /// The requesting client's name.
    pub client_name: String,
    /// Assigned devices as (server index, daemon-local device id).
    pub devices: Vec<(usize, u64)>,
}

struct RegisteredServer {
    name: String,
    address: String,
    devices: Vec<DmDevice>,
    endpoint: Option<Weak<Endpoint>>,
    /// Logical tick of the last heartbeat received from this server.
    last_beat: u64,
    /// The server missed too many beats and was marked down.
    down: bool,
}

#[derive(Default)]
struct ManagerState {
    servers: Vec<RegisteredServer>,
    /// Free devices as (server index, device id).
    free: Vec<(usize, u64)>,
    leases: BTreeMap<String, Lease>,
    round_robin_cursor: usize,
}

/// Outcome of failing one lease over after its server was marked down
/// (Section IV-C: the manager reclaims devices of crashed daemons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseFailover {
    /// The affected lease.
    pub auth_id: String,
    /// Replacement devices assigned on healthy servers, as
    /// (server index, device id).
    pub moved: Vec<(usize, u64)>,
    /// The lease lost devices that could not be replaced (no free device of
    /// the same type on a healthy server); it continues on its survivors —
    /// or was released entirely if none remain.
    pub degraded: bool,
}

/// Guard for a running background health sweep
/// ([`DeviceManager::start_health_monitor`]); dropping it stops the sweep
/// promptly (the background thread is woken and joined).
#[derive(Debug)]
pub struct HealthMonitor {
    stop: std::sync::mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The device manager's registry and assignment logic (transport-agnostic).
pub struct DeviceManager {
    strategy: SchedulingStrategy,
    state: Mutex<ManagerState>,
    next_lease: AtomicU64,
    /// Logical health clock: heartbeats stamp it, [`DeviceManager::tick`]
    /// advances it.  Deterministic by design — tests drive time explicitly.
    health_tick: AtomicU64,
}

impl DeviceManager {
    /// Create an empty device manager.
    pub fn new(strategy: SchedulingStrategy) -> Arc<DeviceManager> {
        Arc::new(DeviceManager {
            strategy,
            state: Mutex::new(ManagerState::default()),
            next_lease: AtomicU64::new(1),
            health_tick: AtomicU64::new(0),
        })
    }

    /// Register (or re-register) a server and its devices; returns the
    /// server index.
    pub fn register_server(
        &self,
        name: &str,
        address: &str,
        devices: Vec<DmDevice>,
        endpoint: Option<Weak<Endpoint>>,
    ) -> usize {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut state = self.state.lock();
        if let Some(index) = state.servers.iter().position(|s| s.name == name) {
            // Re-registration replaces the endpoint but keeps assignments;
            // a restarted daemon comes back up with a fresh beat, and its
            // unassigned devices rejoin the free set.
            let was_down = state.servers[index].down;
            state.servers[index].endpoint = endpoint;
            state.servers[index].address = address.to_string();
            state.servers[index].last_beat = now;
            state.servers[index].down = false;
            if was_down {
                let leased: Vec<(usize, u64)> =
                    state.leases.values().flat_map(|l| l.devices.iter().copied()).collect();
                let revived: Vec<(usize, u64)> = state.servers[index]
                    .devices
                    .iter()
                    .map(|d| (index, d.remote_id))
                    .filter(|d| !leased.contains(d) && !state.free.contains(d))
                    .collect();
                state.free.extend(revived);
            }
            return index;
        }
        let index = state.servers.len();
        let ids: Vec<(usize, u64)> = devices.iter().map(|d| (index, d.remote_id)).collect();
        state.servers.push(RegisteredServer {
            name: name.to_string(),
            address: address.to_string(),
            devices,
            endpoint,
            last_beat: now,
            down: false,
        });
        state.free.extend(ids);
        index
    }

    /// Record a liveness beacon from `server_name`.  Returns `false` for an
    /// unknown server.  A beat from a server previously marked down brings
    /// it back up (its unassigned devices rejoin the free set).
    pub fn heartbeat(&self, server_name: &str) -> bool {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut state = self.state.lock();
        let Some(index) = state.servers.iter().position(|s| s.name == server_name) else {
            return false;
        };
        state.servers[index].last_beat = now;
        if state.servers[index].down {
            state.servers[index].down = false;
            let leased: Vec<(usize, u64)> =
                state.leases.values().flat_map(|l| l.devices.iter().copied()).collect();
            let revived: Vec<(usize, u64)> = state.servers[index]
                .devices
                .iter()
                .map(|d| (index, d.remote_id))
                .filter(|d| !leased.contains(d) && !state.free.contains(d))
                .collect();
            state.free.extend(revived);
        }
        true
    }

    /// Advance the logical health clock by one tick and return the new
    /// value.  Callers pair this with [`DeviceManager::check_health`].
    pub fn tick(&self) -> u64 {
        self.health_tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Start a background sweep that advances the health clock and runs
    /// [`DeviceManager::check_health`] every `interval` until the returned
    /// [`HealthMonitor`] is dropped.
    ///
    /// A server whose heartbeat timer beats faster than `interval` is never
    /// marked down; one that goes silent is failed over after roughly
    /// `max_missed + 1` intervals.  Tests that need determinism keep driving
    /// [`DeviceManager::tick`] / [`DeviceManager::check_health`] by hand
    /// instead of starting a monitor.
    pub fn start_health_monitor(
        self: &Arc<Self>,
        interval: std::time::Duration,
        max_missed: u64,
    ) -> HealthMonitor {
        let manager = Arc::clone(self);
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("devmgr-health".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        manager.tick();
                        // Failover side effects (lease pushes) happen inside
                        // check_health; the event list is for callers that
                        // sweep manually.
                        let _ = manager.check_health(max_missed);
                    }
                    _ => return,
                }
            })
            .expect("spawn health monitor thread");
        HealthMonitor { stop: stop_tx, handle: Some(handle) }
    }

    /// Health of every registered server as (name, up).
    pub fn server_health(&self) -> Vec<(String, bool)> {
        self.state.lock().servers.iter().map(|s| (s.name.clone(), !s.down)).collect()
    }

    /// Mark every server that missed more than `max_missed` ticks since its
    /// last heartbeat as down, remove its devices from the free set, and
    /// fail its leases over: each lost device is replaced by a free device
    /// of the same type on a healthy server (Section IV-C).  Leases that
    /// cannot be made whole continue degraded on their surviving devices,
    /// or are released when nothing survives.
    pub fn check_health(&self, max_missed: u64) -> Vec<LeaseFailover> {
        let now = self.health_tick.load(Ordering::Relaxed);
        let mut events = Vec::new();
        let mut state = self.state.lock();
        let newly_down: Vec<usize> = state
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.down && now.saturating_sub(s.last_beat) > max_missed)
            .map(|(i, _)| i)
            .collect();
        if newly_down.is_empty() {
            return events;
        }
        for &i in &newly_down {
            state.servers[i].down = true;
        }
        state.free.retain(|(s, _)| !newly_down.contains(s));

        let lease_ids: Vec<String> = state.leases.keys().cloned().collect();
        let mut pushes: Vec<(Arc<Endpoint>, DmNotification)> = Vec::new();
        for auth_id in lease_ids {
            let lease = state.leases.get(&auth_id).cloned().expect("lease id just listed");
            let mut survivors: Vec<(usize, u64)> = Vec::new();
            let mut lost: Vec<(usize, u64)> = Vec::new();
            for dev in lease.devices {
                if newly_down.contains(&dev.0) {
                    lost.push(dev);
                } else {
                    survivors.push(dev);
                }
            }
            if lost.is_empty() {
                continue;
            }
            // Replace each lost device with a free one of the same type on
            // a healthy server.
            let mut moved: Vec<(usize, u64)> = Vec::new();
            let mut degraded = false;
            for (server, device) in &lost {
                let wanted_type = state.servers[*server]
                    .devices
                    .iter()
                    .find(|d| d.remote_id == *device)
                    .map(|d| d.device_type.clone());
                let candidate = state.free.iter().copied().find(|(fs, fd)| {
                    !moved.contains(&(*fs, *fd))
                        && match &wanted_type {
                            Some(t) => state.servers[*fs]
                                .devices
                                .iter()
                                .any(|d| d.remote_id == *fd && &d.device_type == t),
                            None => true,
                        }
                });
                match candidate {
                    Some(replacement) => moved.push(replacement),
                    None => degraded = true,
                }
            }
            state.free.retain(|d| !moved.contains(d));
            survivors.extend(moved.iter().copied());
            if survivors.is_empty() {
                state.leases.remove(&auth_id);
            } else {
                state.leases.get_mut(&auth_id).expect("lease present").devices = survivors.clone();
            }
            // Tell the servers receiving moved devices about the lease.
            let mut per_server: HashMap<usize, Vec<u64>> = HashMap::new();
            for (server, device) in &moved {
                per_server.entry(*server).or_default().push(*device);
            }
            for (server_index, device_ids) in per_server {
                if let Some(endpoint) =
                    state.servers[server_index].endpoint.as_ref().and_then(Weak::upgrade)
                {
                    pushes.push((
                        endpoint,
                        DmNotification::AssignDevices { auth_id: auth_id.clone(), device_ids },
                    ));
                }
            }
            events.push(LeaseFailover { auth_id, moved, degraded });
        }
        drop(state);
        for (endpoint, note) in pushes {
            let _ = endpoint.call(note.to_bytes());
        }
        events
    }

    /// Number of devices not assigned to any lease.
    pub fn free_device_count(&self) -> usize {
        self.state.lock().free.len()
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.state.lock().leases.len()
    }

    /// Currently active leases.
    pub fn leases(&self) -> Vec<Lease> {
        self.state.lock().leases.values().cloned().collect()
    }

    /// Handle an assignment request: pick matching free devices, build a
    /// lease, notify the involved daemons, and return the authentication id
    /// plus server addresses for the client.
    pub fn assign(
        &self,
        client_name: &str,
        requirements: &[DmRequirement],
    ) -> Result<(Lease, Vec<String>)> {
        if requirements.is_empty() {
            return Err(DevMgrError::NoMatchingDevices("empty assignment request".into()));
        }
        let mut state = self.state.lock();
        let mut picked: Vec<(usize, u64)> = Vec::new();

        for requirement in requirements {
            for _ in 0..requirement.count {
                let candidate =
                    Self::pick_device(&state, &picked, &requirement.attributes, self.strategy);
                match candidate {
                    Some(dev) => picked.push(dev),
                    None => {
                        return Err(DevMgrError::NoMatchingDevices(format!(
                            "no free device satisfies {:?} for client '{client_name}'",
                            requirement.attributes
                        )))
                    }
                }
            }
        }

        // Commit: remove from the free set, create the lease.
        state.free.retain(|d| !picked.contains(d));
        if self.strategy == SchedulingStrategy::RoundRobin {
            state.round_robin_cursor = state.round_robin_cursor.wrapping_add(1);
        }
        let auth_id = format!("lease-{}", self.next_lease.fetch_add(1, Ordering::Relaxed));
        let lease = Lease {
            auth_id: auth_id.clone(),
            client_name: client_name.to_string(),
            devices: picked.clone(),
        };
        state.leases.insert(auth_id.clone(), lease.clone());

        // Step 3b: send each involved server the intersection of its device
        // list and the lease's device set.
        let mut per_server: HashMap<usize, Vec<u64>> = HashMap::new();
        for (server, device) in &picked {
            per_server.entry(*server).or_default().push(*device);
        }
        let mut server_addresses = Vec::new();
        let mut pushes = Vec::new();
        for (server_index, device_ids) in &per_server {
            let server = &state.servers[*server_index];
            server_addresses.push(server.address.clone());
            if let Some(endpoint) = server.endpoint.as_ref().and_then(Weak::upgrade) {
                let note = DmNotification::AssignDevices {
                    auth_id: auth_id.clone(),
                    device_ids: device_ids.clone(),
                };
                pushes.push((endpoint, note));
            }
        }
        // The daemons must know the lease before the client (who connects
        // the moment it has the auth id) presents it, so the push is a
        // synchronous call, issued outside the state lock: the daemon's
        // reply arrives on this manager's session receiver thread, which
        // must stay free to take the lock for unrelated requests.
        drop(state);
        let mut pushed: Vec<Arc<Endpoint>> = Vec::new();
        for (endpoint, note) in pushes {
            let acked = match endpoint.call(note.to_bytes()) {
                Ok(bytes) => matches!(DmResponse::from_bytes(&bytes), Ok(DmResponse::Ok)),
                Err(_) => false,
            };
            if !acked {
                // A daemon that never learned the auth id would show the
                // client zero devices; hand back an error instead of a
                // lease that cannot be used.  Roll the commit back and tell
                // the daemons that did ack to forget the lease.
                let mut state = self.state.lock();
                state.leases.remove(&auth_id);
                state.free.extend(picked.iter().copied());
                drop(state);
                let revoke = DmNotification::RevokeLease { auth_id: auth_id.clone() };
                for endpoint in pushed {
                    let _ = endpoint.notify(revoke.to_bytes());
                }
                return Err(DevMgrError::Protocol(format!(
                    "a daemon did not acknowledge lease {auth_id}"
                )));
            }
            pushed.push(endpoint);
        }
        server_addresses.sort();
        Ok((lease, server_addresses))
    }

    fn pick_device(
        state: &ManagerState,
        already_picked: &[(usize, u64)],
        attributes: &[(String, String)],
        strategy: SchedulingStrategy,
    ) -> Option<(usize, u64)> {
        let matches = |entry: &(usize, u64)| {
            if already_picked.contains(entry) {
                return false;
            }
            let server = &state.servers[entry.0];
            if server.down {
                return false;
            }
            match server.devices.iter().find(|d| d.remote_id == entry.1) {
                Some(device) => attributes.iter().all(|(k, v)| device.satisfies(k, v)),
                None => false,
            }
        };

        match strategy {
            SchedulingStrategy::FirstFit => state.free.iter().copied().find(matches),
            SchedulingStrategy::RoundRobin => {
                if state.free.is_empty() {
                    return None;
                }
                let n = state.free.len();
                let start = state.round_robin_cursor % n;
                (0..n).map(|i| state.free[(start + i) % n]).find(matches)
            }
        }
    }

    /// Release a lease: its devices return to the free set and the involved
    /// daemons are told to discard the authentication id.
    pub fn release(&self, auth_id: &str) -> Result<()> {
        let mut state = self.state.lock();
        let lease = state
            .leases
            .remove(auth_id)
            .ok_or_else(|| DevMgrError::UnknownLease(auth_id.to_string()))?;
        let mut involved: Vec<usize> = lease.devices.iter().map(|(s, _)| *s).collect();
        involved.sort_unstable();
        involved.dedup();
        state.free.extend(lease.devices.iter().copied());
        let revocations: Vec<_> = involved
            .into_iter()
            .filter_map(|server_index| {
                state.servers[server_index].endpoint.as_ref().and_then(Weak::upgrade)
            })
            .collect();
        // Revocation stays fire-and-forget: release() may run on a daemon
        // session's own receiver thread (ReportDisconnect), where a
        // synchronous call back over that endpoint could never see its
        // reply.  The reporting daemon drops the auth id locally anyway;
        // the free-set bookkeeping above is what must be (and is) atomic.
        drop(state);
        for endpoint in revocations {
            let note = DmNotification::RevokeLease { auth_id: auth_id.to_string() };
            let _ = endpoint.notify(note.to_bytes());
        }
        Ok(())
    }

    /// Diagnostics counters.
    pub fn status(&self) -> (u32, u32, u32) {
        let state = self.state.lock();
        let assigned: usize = state.leases.values().map(|l| l.devices.len()).sum();
        (state.free.len() as u32, assigned as u32, state.leases.len() as u32)
    }
}

/// The network front end of the device manager: accepts connections from
/// daemons and clients and serves the [`DmRequest`] protocol.
pub struct DeviceManagerServer {
    manager: Arc<DeviceManager>,
    address: String,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<Arc<Endpoint>>>>,
}

impl DeviceManagerServer {
    /// Start the device manager listening at `address`.
    pub fn start(
        manager: Arc<DeviceManager>,
        transport: Arc<dyn Transport>,
        address: &str,
    ) -> Result<Arc<DeviceManagerServer>> {
        let listener = transport.listen(address)?;
        let bound = listener.local_addr();
        let server = Arc::new(DeviceManagerServer {
            manager,
            address: bound,
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Arc::new(Mutex::new(Vec::new())),
        });
        let weak = Arc::downgrade(&server);
        std::thread::Builder::new()
            .name("devmgr-accept".to_string())
            .spawn(move || Self::accept_loop(weak, listener))
            .map_err(|e| DevMgrError::Protocol(format!("cannot spawn accept thread: {e}")))?;
        Ok(server)
    }

    fn accept_loop(server: Weak<DeviceManagerServer>, listener: Box<dyn Listener>) {
        loop {
            let Some(strong) = server.upgrade() else { break };
            if strong.shutdown.load(Ordering::Acquire) {
                break;
            }
            drop(strong);
            let Ok(conn) = listener.accept() else { break };
            let Some(strong) = server.upgrade() else { break };
            let session = Arc::new(DmSession {
                manager: Arc::clone(&strong.manager),
                endpoint: Mutex::new(None),
            });
            let endpoint =
                Endpoint::new(conn, Arc::clone(&session) as Arc<dyn EndpointHandler>, "devmgr");
            *session.endpoint.lock() = Some(Arc::downgrade(&endpoint));
            strong.sessions.lock().push(endpoint);
        }
    }

    /// The address the device manager listens at.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// The underlying registry (for inspection).
    pub fn manager(&self) -> &Arc<DeviceManager> {
        &self.manager
    }

    /// Stop accepting connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

struct DmSession {
    manager: Arc<DeviceManager>,
    endpoint: Mutex<Option<Weak<Endpoint>>>,
}

impl DmSession {
    fn handle(&self, request: DmRequest) -> DmResponse {
        match request {
            DmRequest::RegisterServer { server_name, address, devices } => {
                let endpoint = self.endpoint.lock().clone();
                self.manager.register_server(&server_name, &address, devices, endpoint);
                DmResponse::Ok
            }
            DmRequest::RequestAssignment { client_name, requirements } => {
                match self.manager.assign(&client_name, &requirements) {
                    Ok((lease, servers)) => {
                        DmResponse::Assignment { auth_id: lease.auth_id, servers }
                    }
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::ReleaseLease { auth_id } | DmRequest::ReportDisconnect { auth_id } => {
                match self.manager.release(&auth_id) {
                    Ok(()) => DmResponse::Ok,
                    Err(e) => DmResponse::Error { message: e.to_string() },
                }
            }
            DmRequest::GetStatus => {
                let (free_devices, assigned_devices, leases) = self.manager.status();
                DmResponse::Status { free_devices, assigned_devices, leases }
            }
            DmRequest::Heartbeat { server_name } => {
                if self.manager.heartbeat(&server_name) {
                    DmResponse::Ok
                } else {
                    DmResponse::Error { message: format!("unknown server '{server_name}'") }
                }
            }
        }
    }
}

impl EndpointHandler for DmSession {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        let response = match DmRequest::from_bytes(payload) {
            Ok(request) => self.handle(request),
            Err(e) => DmResponse::Error { message: format!("malformed request: {e}") },
        };
        response.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(id: u64) -> DmDevice {
        DmDevice {
            remote_id: id,
            name: format!("GPU {id}"),
            vendor: "NVIDIA".into(),
            device_type: "GPU".into(),
            compute_units: 30,
            global_mem_bytes: 4 << 30,
        }
    }

    fn cpu(id: u64) -> DmDevice {
        DmDevice {
            remote_id: id,
            name: format!("CPU {id}"),
            vendor: "Intel".into(),
            device_type: "CPU".into(),
            compute_units: 8,
            global_mem_bytes: 16 << 30,
        }
    }

    fn gpu_requirement() -> DmRequirement {
        DmRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }
    }

    #[test]
    fn assignment_creates_lease_and_removes_from_free_set() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("srv", "srv-addr", vec![gpu(1), gpu(2), cpu(3)], None);
        assert_eq!(dm.free_device_count(), 3);
        let (lease, servers) = dm.assign("client-a", &[gpu_requirement()]).unwrap();
        assert_eq!(servers, vec!["srv-addr".to_string()]);
        assert_eq!(lease.devices.len(), 1);
        assert_eq!(dm.free_device_count(), 2);
        assert_eq!(dm.lease_count(), 1);
        dm.release(&lease.auth_id).unwrap();
        assert_eq!(dm.free_device_count(), 3);
        assert_eq!(dm.lease_count(), 0);
        assert!(dm.release(&lease.auth_id).is_err());
    }

    #[test]
    fn concurrent_clients_get_distinct_devices() {
        // The Figure 6 scenario: four clients each requesting one GPU of a
        // 4-GPU server must end up on four different devices.
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("gpuserver", "gpuserver", vec![gpu(1), gpu(2), gpu(3), gpu(4)], None);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            let (lease, _) = dm.assign(&format!("client-{i}"), &[gpu_requirement()]).unwrap();
            for d in &lease.devices {
                assert!(seen.insert(*d), "device {d:?} assigned twice");
            }
        }
        // A fifth client cannot be served.
        assert!(dm.assign("client-4", &[gpu_requirement()]).is_err());
    }

    #[test]
    fn attribute_constraints_are_respected() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("srv", "srv", vec![gpu(1), cpu(2)], None);
        let req = DmRequirement {
            count: 1,
            attributes: vec![("TYPE".into(), "CPU".into()), ("VENDOR".into(), "Intel".into())],
        };
        let (lease, _) = dm.assign("c", &[req]).unwrap();
        assert_eq!(lease.devices, vec![(0, 2)]);
        // Requesting 2 CPUs now fails (only one existed and it is taken).
        let req = DmRequirement { count: 2, attributes: vec![("TYPE".into(), "CPU".into())] };
        assert!(dm.assign("c2", &[req]).is_err());
    }

    #[test]
    fn round_robin_spreads_across_servers() {
        let dm = DeviceManager::new(SchedulingStrategy::RoundRobin);
        dm.register_server("a", "a", vec![gpu(1), gpu(2)], None);
        dm.register_server("b", "b", vec![gpu(10), gpu(11)], None);
        let (l1, _) = dm.assign("c1", &[gpu_requirement()]).unwrap();
        let (l2, _) = dm.assign("c2", &[gpu_requirement()]).unwrap();
        let s1 = l1.devices[0].0;
        let s2 = l2.devices[0].0;
        assert_ne!(
            (s1, l1.devices[0].1),
            (s2, l2.devices[0].1),
            "round robin must not reuse the same device"
        );
    }

    #[test]
    fn multi_server_lease_lists_all_servers() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("a", "addr-a", vec![gpu(1)], None);
        dm.register_server("b", "addr-b", vec![gpu(2)], None);
        let req = DmRequirement { count: 2, attributes: vec![("TYPE".into(), "GPU".into())] };
        let (lease, servers) = dm.assign("c", &[req]).unwrap();
        assert_eq!(lease.devices.len(), 2);
        assert_eq!(servers, vec!["addr-a".to_string(), "addr-b".to_string()]);
    }

    #[test]
    fn reregistration_keeps_assignments() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("a", "addr-a", vec![gpu(1)], None);
        let (lease, _) = dm.assign("c", &[gpu_requirement()]).unwrap();
        // Daemon restarts and re-registers: device stays assigned.
        dm.register_server("a", "addr-a2", vec![gpu(1)], None);
        assert_eq!(dm.free_device_count(), 0);
        dm.release(&lease.auth_id).unwrap();
        assert_eq!(dm.free_device_count(), 1);
    }

    #[test]
    fn empty_request_is_rejected() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1)], None);
        assert!(dm.assign("c", &[]).is_err());
    }

    #[test]
    fn status_counts() {
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        dm.register_server("a", "a", vec![gpu(1), gpu(2)], None);
        dm.assign("c", &[gpu_requirement()]).unwrap();
        assert_eq!(dm.status(), (1, 1, 1));
    }
}
