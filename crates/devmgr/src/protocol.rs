//! Wire protocol of the central device manager (Section IV, Figure 2).
//!
//! Three parties use it:
//!
//! * **daemons** in managed mode register their devices
//!   ([`DmRequest::RegisterServer`]) and receive device assignments as
//!   notifications ([`DmNotification::AssignDevices`], step 3b in Figure 2),
//! * **clients** send assignment requests ([`DmRequest::RequestAssignment`],
//!   step 1) and receive the lease's authentication id plus server list
//!   ([`DmResponse::Assignment`], step 3a),
//! * both report lease termination ([`DmRequest::ReleaseLease`] from the
//!   client, [`DmRequest::ReportDisconnect`] from a daemon that lost its
//!   client, Section IV-C).

use gcf::wire::{Decode, Encode, Reader};
use gcf::GcfError;

fn codec_err(msg: impl Into<String>) -> GcfError {
    GcfError::Codec(msg.into())
}

/// A device as registered by a daemon with the device manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmDevice {
    /// The daemon-local device id (what the dOpenCL protocol calls the
    /// remote device id).
    pub remote_id: u64,
    /// `CL_DEVICE_NAME`.
    pub name: String,
    /// `CL_DEVICE_VENDOR`.
    pub vendor: String,
    /// `CL_DEVICE_TYPE` as a string (`CPU`, `GPU`, ...).
    pub device_type: String,
    /// `CL_DEVICE_MAX_COMPUTE_UNITS`.
    pub compute_units: u32,
    /// `CL_DEVICE_GLOBAL_MEM_SIZE`.
    pub global_mem_bytes: u64,
}

impl DmDevice {
    /// Whether this device satisfies an attribute constraint from a device
    /// request (`TYPE`, `VENDOR`, `NAME`, `MAX_COMPUTE_UNITS`,
    /// `GLOBAL_MEM_SIZE`).  Numeric attributes are minimum requirements.
    pub fn satisfies(&self, name: &str, value: &str) -> bool {
        match name.to_ascii_uppercase().as_str() {
            "TYPE" => self.device_type.eq_ignore_ascii_case(value.trim()),
            "VENDOR" => {
                self.vendor.to_ascii_lowercase().contains(&value.trim().to_ascii_lowercase())
            }
            "NAME" => self.name.to_ascii_lowercase().contains(&value.trim().to_ascii_lowercase()),
            "MAX_COMPUTE_UNITS" => {
                value.trim().parse::<u32>().map(|want| self.compute_units >= want).unwrap_or(false)
            }
            "GLOBAL_MEM_SIZE" => value
                .trim()
                .parse::<u64>()
                .map(|want| self.global_mem_bytes >= want)
                .unwrap_or(false),
            _ => false,
        }
    }
}

impl Encode for DmDevice {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.remote_id.encode(buf);
        self.name.encode(buf);
        self.vendor.encode(buf);
        self.device_type.encode(buf);
        self.compute_units.encode(buf);
        self.global_mem_bytes.encode(buf);
    }
}

impl Decode for DmDevice {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(DmDevice {
            remote_id: u64::decode(r)?,
            name: String::decode(r)?,
            vendor: String::decode(r)?,
            device_type: String::decode(r)?,
            compute_units: u32::decode(r)?,
            global_mem_bytes: u64::decode(r)?,
        })
    }
}

/// One device requirement of an assignment request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmRequirement {
    /// Number of devices with these attributes.
    pub count: u32,
    /// Attribute constraints.
    pub attributes: Vec<(String, String)>,
}

impl Encode for DmRequirement {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.count.encode(buf);
        self.attributes.encode(buf);
    }
}

impl Decode for DmRequirement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(DmRequirement { count: u32::decode(r)?, attributes: Vec::decode(r)? })
    }
}

/// One fractional-share requirement of an assignment request (the
/// resource-manager generalization of [`DmRequirement`]): device attributes
/// plus compute/memory quotas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmShareRequest {
    /// Number of shares with these parameters, each on a distinct device.
    pub count: u32,
    /// Attribute constraints on the physical device.
    pub attributes: Vec<(String, String)>,
    /// Desired compute share in millis (1000 = a whole device).
    pub compute_millis: u32,
    /// Smallest acceptable grant (0 = all-or-nothing).
    pub min_millis: u32,
    /// Required device-memory quota in bytes (0 = no requirement).
    pub mem_bytes: u64,
}

impl Encode for DmShareRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.count.encode(buf);
        self.attributes.encode(buf);
        self.compute_millis.encode(buf);
        self.min_millis.encode(buf);
        self.mem_bytes.encode(buf);
    }
}

impl Decode for DmShareRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(DmShareRequest {
            count: u32::decode(r)?,
            attributes: Vec::decode(r)?,
            compute_millis: u32::decode(r)?,
            min_millis: u32::decode(r)?,
            mem_bytes: u64::decode(r)?,
        })
    }
}

/// A per-device quota, as pushed to daemons and reported to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmQuota {
    /// Daemon-local device id.
    pub device_id: u64,
    /// Granted compute share in millis.
    pub compute_millis: u32,
    /// Granted memory quota in bytes (0 = unlimited).
    pub mem_bytes: u64,
}

impl Encode for DmQuota {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.device_id.encode(buf);
        self.compute_millis.encode(buf);
        self.mem_bytes.encode(buf);
    }
}

impl Decode for DmQuota {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(DmQuota {
            device_id: u64::decode(r)?,
            compute_millis: u32::decode(r)?,
            mem_bytes: u64::decode(r)?,
        })
    }
}

/// One grant of a lease, as reported to clients by
/// [`DmResponse::LeaseInfo`]: which server/device hosts the share and its
/// current quotas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmGrant {
    /// Address of the server hosting the share.
    pub server: String,
    /// Daemon-local device id.
    pub device_id: u64,
    /// Current compute share in millis.
    pub compute_millis: u32,
    /// Current memory quota in bytes.
    pub mem_bytes: u64,
}

impl Encode for DmGrant {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.server.encode(buf);
        self.device_id.encode(buf);
        self.compute_millis.encode(buf);
        self.mem_bytes.encode(buf);
    }
}

impl Decode for DmGrant {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(DmGrant {
            server: String::decode(r)?,
            device_id: u64::decode(r)?,
            compute_millis: u32::decode(r)?,
            mem_bytes: u64::decode(r)?,
        })
    }
}

/// Why a lease changed underneath its client
/// ([`DmNotification::LeaseChanged`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseChangeReason {
    /// One or more shares moved to another server (failover, drain, or
    /// preemption-driven migration); re-read the lease and reconcile
    /// connections.
    Migrated,
    /// Quotas were shrunk by fair-share rebalancing.
    Shrunk,
    /// One or more shares were revoked without replacement.
    Revoked,
}

impl LeaseChangeReason {
    fn to_u8(self) -> u8 {
        match self {
            LeaseChangeReason::Migrated => 0,
            LeaseChangeReason::Shrunk => 1,
            LeaseChangeReason::Revoked => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, GcfError> {
        Ok(match v {
            0 => LeaseChangeReason::Migrated,
            1 => LeaseChangeReason::Shrunk,
            2 => LeaseChangeReason::Revoked,
            other => return Err(codec_err(format!("invalid lease-change reason {other}"))),
        })
    }
}

/// Requests understood by the device manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmRequest {
    /// A daemon in managed mode announces itself and its devices.
    RegisterServer {
        /// The daemon's node name.
        server_name: String,
        /// The address clients should connect to.
        address: String,
        /// The devices the daemon owns.
        devices: Vec<DmDevice>,
    },
    /// A client asks for devices (step 1 in Figure 2).
    RequestAssignment {
        /// The requesting client's name.
        client_name: String,
        /// What it needs.
        requirements: Vec<DmRequirement>,
    },
    /// The client is done with its lease.
    ReleaseLease {
        /// The lease's authentication id.
        auth_id: String,
    },
    /// A daemon reports that the client holding `auth_id` disconnected
    /// (abnormal termination, Section IV-C).
    ReportDisconnect {
        /// The invalidated authentication id.
        auth_id: String,
    },
    /// Diagnostics: free/assigned device counts.
    GetStatus,
    /// A daemon's liveness beacon (Section IV-C): the manager marks servers
    /// down — and fails their leases over — after too many missed beats.
    Heartbeat {
        /// The reporting daemon's node name.
        server_name: String,
    },
    /// A client asks for fractional shares (the resource-manager form of
    /// [`DmRequest::RequestAssignment`]).
    RequestShares {
        /// The requesting client's name.
        client_name: String,
        /// Scheduling priority (only meaningful under the Priority policy;
        /// higher wins).
        priority: u32,
        /// The requested shares.
        shares: Vec<DmShareRequest>,
    },
    /// Administratively drain a server: no new placements land on it and
    /// its shares are migrated to other nodes where capacity allows
    /// (graceful leave, first half).
    DrainServer {
        /// The node name to drain.
        server_name: String,
    },
    /// Remove a (typically drained) server from the cluster; shares still
    /// on it are failed over like a crash.
    RemoveServer {
        /// The node name to remove.
        server_name: String,
    },
    /// Query the current grants of a lease.
    GetLease {
        /// The lease's authentication id.
        auth_id: String,
    },
    /// Subscribe this connection to [`DmNotification::LeaseChanged`] pushes
    /// for a lease (clients call this to learn about migrations,
    /// rebalancing shrinks and revocations).
    WatchLease {
        /// The lease's authentication id.
        auth_id: String,
    },
}

impl Encode for DmRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DmRequest::RegisterServer { server_name, address, devices } => {
                buf.push(0);
                server_name.encode(buf);
                address.encode(buf);
                devices.encode(buf);
            }
            DmRequest::RequestAssignment { client_name, requirements } => {
                buf.push(1);
                client_name.encode(buf);
                requirements.encode(buf);
            }
            DmRequest::ReleaseLease { auth_id } => {
                buf.push(2);
                auth_id.encode(buf);
            }
            DmRequest::ReportDisconnect { auth_id } => {
                buf.push(3);
                auth_id.encode(buf);
            }
            DmRequest::GetStatus => buf.push(4),
            DmRequest::Heartbeat { server_name } => {
                buf.push(5);
                server_name.encode(buf);
            }
            DmRequest::RequestShares { client_name, priority, shares } => {
                buf.push(6);
                client_name.encode(buf);
                priority.encode(buf);
                shares.encode(buf);
            }
            DmRequest::DrainServer { server_name } => {
                buf.push(7);
                server_name.encode(buf);
            }
            DmRequest::RemoveServer { server_name } => {
                buf.push(8);
                server_name.encode(buf);
            }
            DmRequest::GetLease { auth_id } => {
                buf.push(9);
                auth_id.encode(buf);
            }
            DmRequest::WatchLease { auth_id } => {
                buf.push(10);
                auth_id.encode(buf);
            }
        }
    }
}

impl Decode for DmRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => DmRequest::RegisterServer {
                server_name: String::decode(r)?,
                address: String::decode(r)?,
                devices: Vec::decode(r)?,
            },
            1 => DmRequest::RequestAssignment {
                client_name: String::decode(r)?,
                requirements: Vec::decode(r)?,
            },
            2 => DmRequest::ReleaseLease { auth_id: String::decode(r)? },
            3 => DmRequest::ReportDisconnect { auth_id: String::decode(r)? },
            4 => DmRequest::GetStatus,
            5 => DmRequest::Heartbeat { server_name: String::decode(r)? },
            6 => DmRequest::RequestShares {
                client_name: String::decode(r)?,
                priority: u32::decode(r)?,
                shares: Vec::decode(r)?,
            },
            7 => DmRequest::DrainServer { server_name: String::decode(r)? },
            8 => DmRequest::RemoveServer { server_name: String::decode(r)? },
            9 => DmRequest::GetLease { auth_id: String::decode(r)? },
            10 => DmRequest::WatchLease { auth_id: String::decode(r)? },
            other => return Err(codec_err(format!("invalid device-manager request tag {other}"))),
        })
    }
}

/// Responses of the device manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmResponse {
    /// Success without payload.
    Ok,
    /// Failure (e.g. no matching devices available).
    Error {
        /// Description.
        message: String,
    },
    /// A granted lease (step 3a in Figure 2).
    Assignment {
        /// The lease's authentication id.
        auth_id: String,
        /// Addresses of the servers owning the assigned devices.
        servers: Vec<String>,
    },
    /// Diagnostics.
    Status {
        /// Devices not assigned to any lease.
        free_devices: u32,
        /// Devices currently assigned.
        assigned_devices: u32,
        /// Active leases.
        leases: u32,
    },
    /// The current grants of a lease ([`DmRequest::GetLease`]).
    LeaseInfo {
        /// The lease's authentication id.
        auth_id: String,
        /// Per-device grants with their current quotas.
        grants: Vec<DmGrant>,
    },
}

impl Encode for DmResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DmResponse::Ok => buf.push(0),
            DmResponse::Error { message } => {
                buf.push(1);
                message.encode(buf);
            }
            DmResponse::Assignment { auth_id, servers } => {
                buf.push(2);
                auth_id.encode(buf);
                servers.encode(buf);
            }
            DmResponse::Status { free_devices, assigned_devices, leases } => {
                buf.push(3);
                free_devices.encode(buf);
                assigned_devices.encode(buf);
                leases.encode(buf);
            }
            DmResponse::LeaseInfo { auth_id, grants } => {
                buf.push(4);
                auth_id.encode(buf);
                grants.encode(buf);
            }
        }
    }
}

impl Decode for DmResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => DmResponse::Ok,
            1 => DmResponse::Error { message: String::decode(r)? },
            2 => DmResponse::Assignment { auth_id: String::decode(r)?, servers: Vec::decode(r)? },
            3 => DmResponse::Status {
                free_devices: u32::decode(r)?,
                assigned_devices: u32::decode(r)?,
                leases: u32::decode(r)?,
            },
            4 => DmResponse::LeaseInfo { auth_id: String::decode(r)?, grants: Vec::decode(r)? },
            other => return Err(codec_err(format!("invalid device-manager response tag {other}"))),
        })
    }
}

/// Notifications pushed by the device manager to registered daemons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmNotification {
    /// Associate `device_ids` with the authentication id (step 3b).
    AssignDevices {
        /// The lease's authentication id.
        auth_id: String,
        /// Daemon-local device ids the lease may use on this server.
        device_ids: Vec<u64>,
    },
    /// Discard the authentication id; its devices are free again.
    RevokeLease {
        /// The lease's authentication id.
        auth_id: String,
    },
    /// Associate fractional shares with the authentication id (the
    /// quota-carrying form of [`DmNotification::AssignDevices`]).
    AssignShares {
        /// The lease's authentication id.
        auth_id: String,
        /// Per-device quotas the lease may use on this server.
        shares: Vec<DmQuota>,
    },
    /// Replace the lease's quotas on this server (rebalancing shrink or
    /// grow).  A quota of 0 compute millis removes the device from the
    /// lease.
    UpdateQuota {
        /// The lease's authentication id.
        auth_id: String,
        /// The new per-device quotas.
        quotas: Vec<DmQuota>,
    },
    /// Pushed to watching clients ([`DmRequest::WatchLease`]): the lease's
    /// placement or quotas changed; re-read it with
    /// [`DmRequest::GetLease`] and reconcile server connections.
    LeaseChanged {
        /// The lease's authentication id.
        auth_id: String,
        /// Current addresses of the servers hosting the lease's shares.
        servers: Vec<String>,
        /// What happened.
        reason: LeaseChangeReason,
    },
}

impl Encode for DmNotification {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DmNotification::AssignDevices { auth_id, device_ids } => {
                buf.push(0);
                auth_id.encode(buf);
                device_ids.encode(buf);
            }
            DmNotification::RevokeLease { auth_id } => {
                buf.push(1);
                auth_id.encode(buf);
            }
            DmNotification::AssignShares { auth_id, shares } => {
                buf.push(2);
                auth_id.encode(buf);
                shares.encode(buf);
            }
            DmNotification::UpdateQuota { auth_id, quotas } => {
                buf.push(3);
                auth_id.encode(buf);
                quotas.encode(buf);
            }
            DmNotification::LeaseChanged { auth_id, servers, reason } => {
                buf.push(4);
                auth_id.encode(buf);
                servers.encode(buf);
                buf.push(reason.to_u8());
            }
        }
    }
}

impl Decode for DmNotification {
    fn decode(r: &mut Reader<'_>) -> Result<Self, GcfError> {
        Ok(match u8::decode(r)? {
            0 => DmNotification::AssignDevices {
                auth_id: String::decode(r)?,
                device_ids: Vec::decode(r)?,
            },
            1 => DmNotification::RevokeLease { auth_id: String::decode(r)? },
            2 => DmNotification::AssignShares {
                auth_id: String::decode(r)?,
                shares: Vec::decode(r)?,
            },
            3 => {
                DmNotification::UpdateQuota { auth_id: String::decode(r)?, quotas: Vec::decode(r)? }
            }
            4 => DmNotification::LeaseChanged {
                auth_id: String::decode(r)?,
                servers: Vec::decode(r)?,
                reason: LeaseChangeReason::from_u8(u8::decode(r)?)?,
            },
            other => {
                return Err(codec_err(format!("invalid device-manager notification tag {other}")))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DmDevice {
        DmDevice {
            remote_id: 7,
            name: "NVIDIA Tesla S1070".into(),
            vendor: "NVIDIA Corporation".into(),
            device_type: "GPU".into(),
            compute_units: 30,
            global_mem_bytes: 4 << 30,
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            DmRequest::RegisterServer {
                server_name: "gpuserver".into(),
                address: "gpuserver:7079".into(),
                devices: vec![device()],
            },
            DmRequest::RequestAssignment {
                client_name: "desktop".into(),
                requirements: vec![DmRequirement {
                    count: 2,
                    attributes: vec![("TYPE".into(), "CPU".into())],
                }],
            },
            DmRequest::ReleaseLease { auth_id: "lease-1".into() },
            DmRequest::ReportDisconnect { auth_id: "lease-1".into() },
            DmRequest::GetStatus,
            DmRequest::Heartbeat { server_name: "gpuserver".into() },
            DmRequest::RequestShares {
                client_name: "desktop".into(),
                priority: 7,
                shares: vec![DmShareRequest {
                    count: 2,
                    attributes: vec![("TYPE".into(), "GPU".into())],
                    compute_millis: 250,
                    min_millis: 50,
                    mem_bytes: 1 << 20,
                }],
            },
            DmRequest::DrainServer { server_name: "gpuserver".into() },
            DmRequest::RemoveServer { server_name: "gpuserver".into() },
            DmRequest::GetLease { auth_id: "lease-1".into() },
            DmRequest::WatchLease { auth_id: "lease-1".into() },
        ] {
            assert_eq!(DmRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn responses_and_notifications_roundtrip() {
        for resp in [
            DmResponse::Ok,
            DmResponse::Error { message: "no device".into() },
            DmResponse::Assignment {
                auth_id: "lease-2".into(),
                servers: vec!["a".into(), "b".into()],
            },
            DmResponse::Status { free_devices: 3, assigned_devices: 1, leases: 1 },
            DmResponse::LeaseInfo {
                auth_id: "lease-2".into(),
                grants: vec![DmGrant {
                    server: "gpuserver".into(),
                    device_id: 3,
                    compute_millis: 250,
                    mem_bytes: 1 << 20,
                }],
            },
        ] {
            assert_eq!(DmResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
        for n in [
            DmNotification::AssignDevices { auth_id: "lease-2".into(), device_ids: vec![1, 2] },
            DmNotification::RevokeLease { auth_id: "lease-2".into() },
            DmNotification::AssignShares {
                auth_id: "lease-2".into(),
                shares: vec![DmQuota { device_id: 1, compute_millis: 500, mem_bytes: 0 }],
            },
            DmNotification::UpdateQuota {
                auth_id: "lease-2".into(),
                quotas: vec![DmQuota { device_id: 1, compute_millis: 250, mem_bytes: 0 }],
            },
            DmNotification::LeaseChanged {
                auth_id: "lease-2".into(),
                servers: vec!["a".into(), "b".into()],
                reason: LeaseChangeReason::Migrated,
            },
        ] {
            assert_eq!(DmNotification::from_bytes(&n.to_bytes()).unwrap(), n);
        }
    }

    #[test]
    fn attribute_matching() {
        let d = device();
        assert!(d.satisfies("TYPE", "GPU"));
        assert!(d.satisfies("TYPE", "gpu"));
        assert!(!d.satisfies("TYPE", "CPU"));
        assert!(d.satisfies("VENDOR", "nvidia"));
        assert!(d.satisfies("NAME", "Tesla"));
        assert!(d.satisfies("MAX_COMPUTE_UNITS", "16"));
        assert!(!d.satisfies("MAX_COMPUTE_UNITS", "64"));
        assert!(d.satisfies("GLOBAL_MEM_SIZE", "1073741824"));
        assert!(!d.satisfies("UNKNOWN_ATTR", "x"));
        assert!(!d.satisfies("MAX_COMPUTE_UNITS", "not-a-number"));
    }

    #[test]
    fn corrupted_messages_rejected() {
        assert!(DmRequest::from_bytes(&[9]).is_err());
        assert!(DmResponse::from_bytes(&[9]).is_err());
        assert!(DmNotification::from_bytes(&[9]).is_err());
    }
}
