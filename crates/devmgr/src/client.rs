//! Client-side helpers: requesting devices from the device manager and
//! wiring the assignment into a dOpenCL client (Section IV-B, Figure 2).

use crate::config::{DeviceRequestConfig, DeviceRequirement};
use crate::error::{DevMgrError, Result};
use crate::protocol::{
    DmGrant, DmNotification, DmRequest, DmRequirement, DmResponse, DmShareRequest,
    LeaseChangeReason,
};
use dopencl::Client;
use gcf::rpc::{Endpoint, EndpointHandler, NullHandler};
use gcf::transport::Transport;
use gcf::wire::{Decode, Encode};
use std::sync::Arc;

/// The result of an assignment request: the lease's authentication id plus
/// the servers the client should connect to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Lease authentication id to present to the daemons.
    pub auth_id: String,
    /// Addresses of the servers owning the assigned devices.
    pub servers: Vec<String>,
    /// The device-manager address (needed later to release the lease).
    pub device_manager: String,
}

fn requirements_from_config(config: &[DeviceRequirement]) -> Vec<DmRequirement> {
    config
        .iter()
        .map(|d| DmRequirement { count: d.count, attributes: d.attributes.clone() })
        .collect()
}

fn dm_endpoint(transport: &Arc<dyn Transport>, dm_address: &str) -> Result<Arc<Endpoint>> {
    let conn = transport.connect(dm_address)?;
    Ok(Endpoint::new(conn, Arc::new(NullHandler), "devmgr-client"))
}

fn dm_call(endpoint: &Arc<Endpoint>, request: DmRequest) -> Result<DmResponse> {
    let bytes = endpoint.call(request.to_bytes())?;
    DmResponse::from_bytes(&bytes).map_err(|e| DevMgrError::Protocol(e.to_string()))
}

/// Reconstruct the typed error a remote device manager reported (the wire
/// carries only a message; the [`DevMgrError`] Display prefixes
/// disambiguate).
fn remote_error(message: String) -> DevMgrError {
    if let Some(m) = message.strip_prefix("cluster saturated: ") {
        DevMgrError::Saturated(m.to_string())
    } else if let Some(m) = message.strip_prefix("unknown lease: ") {
        DevMgrError::UnknownLease(m.to_string())
    } else if let Some(m) = message.strip_prefix("no matching devices: ") {
        DevMgrError::NoMatchingDevices(m.to_string())
    } else {
        DevMgrError::NoMatchingDevices(message)
    }
}

/// Step 1 + 3a of Figure 2: send an assignment request and return the lease.
pub fn request_assignment(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    client_name: &str,
    requirements: &[DeviceRequirement],
) -> Result<Assignment> {
    let endpoint = dm_endpoint(transport, dm_address)?;
    let response = dm_call(
        &endpoint,
        DmRequest::RequestAssignment {
            client_name: client_name.to_string(),
            requirements: requirements_from_config(requirements),
        },
    )?;
    endpoint.close();
    match response {
        DmResponse::Assignment { auth_id, servers } => {
            Ok(Assignment { auth_id, servers, device_manager: dm_address.to_string() })
        }
        DmResponse::Error { message } => Err(remote_error(message)),
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// Request *fractional* shares from the resource manager: each
/// [`DmShareRequest`] names attribute constraints plus a compute share in
/// millis (with a floor) and a memory quota.  `priority` orders leases
/// under [`crate::Strategy::Priority`] and weights them under
/// [`crate::Strategy::Fair`].
pub fn request_shares(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    client_name: &str,
    priority: u32,
    shares: &[DmShareRequest],
) -> Result<Assignment> {
    let endpoint = dm_endpoint(transport, dm_address)?;
    let response = dm_call(
        &endpoint,
        DmRequest::RequestShares {
            client_name: client_name.to_string(),
            priority,
            shares: shares.to_vec(),
        },
    )?;
    endpoint.close();
    match response {
        DmResponse::Assignment { auth_id, servers } => {
            Ok(Assignment { auth_id, servers, device_manager: dm_address.to_string() })
        }
        DmResponse::Error { message } => Err(remote_error(message)),
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// Fetch the current grants of a lease (server address, device, quotas) —
/// how a client observes migrations and shrinks when polling rather than
/// watching.
pub fn get_lease(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    auth_id: &str,
) -> Result<Vec<DmGrant>> {
    let endpoint = dm_endpoint(transport, dm_address)?;
    let response = dm_call(&endpoint, DmRequest::GetLease { auth_id: auth_id.to_string() })?;
    endpoint.close();
    match response {
        DmResponse::LeaseInfo { grants, .. } => Ok(grants),
        DmResponse::Error { message } => Err(remote_error(message)),
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// A lease-change notice pushed to a watching client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseChangeNotice {
    /// The affected lease.
    pub auth_id: String,
    /// The lease's server addresses *after* the change (empty when the
    /// lease was released/revoked entirely).
    pub servers: Vec<String>,
    /// Why the lease changed.
    pub reason: LeaseChangeReason,
}

struct WatchHandler {
    callback: Box<dyn Fn(LeaseChangeNotice) + Send + Sync>,
}

impl WatchHandler {
    fn apply(&self, payload: &[u8]) {
        if let Ok(DmNotification::LeaseChanged { auth_id, servers, reason }) =
            DmNotification::from_bytes(payload)
        {
            (self.callback)(LeaseChangeNotice { auth_id, servers, reason });
        }
    }
}

impl EndpointHandler for WatchHandler {
    fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
        self.apply(payload);
        DmResponse::Ok.to_bytes()
    }

    fn handle_notification(&self, payload: &[u8]) {
        self.apply(payload);
    }
}

/// A live lease watch; dropping it closes the connection and stops the
/// callbacks.
pub struct LeaseWatch {
    endpoint: Arc<Endpoint>,
}

impl Drop for LeaseWatch {
    fn drop(&mut self) {
        self.endpoint.close();
    }
}

/// Subscribe to lease-change pushes for `auth_id`: `callback` runs (on the
/// watch connection's receiver thread) every time the resource manager
/// migrates, shrinks, or revokes the lease.  Clients use this to reconnect
/// to the lease's new servers and re-validate buffers through the
/// coherence directory.  Keep the returned [`LeaseWatch`] alive for as
/// long as the subscription should last.
pub fn watch_lease(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    auth_id: &str,
    callback: impl Fn(LeaseChangeNotice) + Send + Sync + 'static,
) -> Result<LeaseWatch> {
    let conn = transport.connect(dm_address)?;
    let handler = Arc::new(WatchHandler { callback: Box::new(callback) });
    let endpoint = Endpoint::new(conn, handler, "devmgr-watch");
    let response = dm_call(&endpoint, DmRequest::WatchLease { auth_id: auth_id.to_string() })?;
    match response {
        DmResponse::Ok => Ok(LeaseWatch { endpoint }),
        DmResponse::Error { message } => {
            endpoint.close();
            Err(remote_error(message))
        }
        other => {
            endpoint.close();
            Err(DevMgrError::Protocol(format!("unexpected response {other:?}")))
        }
    }
}

/// Administrative: drain a server (no new placements; shares migrate off
/// as capacity allows) ahead of a graceful leave.
pub fn drain_server(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    server_name: &str,
) -> Result<()> {
    admin_call(transport, dm_address, DmRequest::DrainServer { server_name: server_name.into() })
}

/// Administrative: remove a server from the cluster; remaining shares are
/// failed over like a crash.
pub fn remove_server(
    transport: &Arc<dyn Transport>,
    dm_address: &str,
    server_name: &str,
) -> Result<()> {
    admin_call(transport, dm_address, DmRequest::RemoveServer { server_name: server_name.into() })
}

fn admin_call(transport: &Arc<dyn Transport>, dm_address: &str, request: DmRequest) -> Result<()> {
    let endpoint = dm_endpoint(transport, dm_address)?;
    let response = dm_call(&endpoint, request)?;
    endpoint.close();
    match response {
        DmResponse::Ok => Ok(()),
        DmResponse::Error { message } => Err(DevMgrError::Protocol(message)),
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// Release a lease (sent by the client when its application finishes).
pub fn release_assignment(transport: &Arc<dyn Transport>, assignment: &Assignment) -> Result<()> {
    let endpoint = dm_endpoint(transport, &assignment.device_manager)?;
    let response =
        dm_call(&endpoint, DmRequest::ReleaseLease { auth_id: assignment.auth_id.clone() })?;
    endpoint.close();
    match response {
        DmResponse::Ok => Ok(()),
        DmResponse::Error { message } => Err(DevMgrError::UnknownLease(message)),
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

/// The automatic device request mechanism (Section IV-B): parse the XML
/// configuration, request the devices, present the authentication id, and
/// connect the client to the assigned servers (steps 4–5 of Figure 2).
///
/// Returns the assignment so the caller can later release it.
pub fn connect_via_device_manager(
    client: &Client,
    transport: &Arc<dyn Transport>,
    config: &DeviceRequestConfig,
) -> Result<Assignment> {
    let assignment =
        request_assignment(transport, &config.device_manager, "dopencl-client", &config.devices)?;
    client.set_auth_id(Some(assignment.auth_id.clone()));
    for server in &assignment.servers {
        client.connect_server(server)?;
    }
    Ok(assignment)
}

/// Query the device manager's status counters (diagnostics).
pub fn query_status(transport: &Arc<dyn Transport>, dm_address: &str) -> Result<(u32, u32, u32)> {
    let endpoint = dm_endpoint(transport, dm_address)?;
    let response = dm_call(&endpoint, DmRequest::GetStatus)?;
    endpoint.close();
    match response {
        DmResponse::Status { free_devices, assigned_devices, leases } => {
            Ok((free_devices, assigned_devices, leases))
        }
        other => Err(DevMgrError::Protocol(format!("unexpected response {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_device_request;
    use crate::managed::ManagedDaemon;
    use crate::manager::{DeviceManager, DeviceManagerServer, SchedulingStrategy};
    use dopencl::LocalCluster;
    use gcf::LinkModel;
    use vocl::Platform;

    /// Full Figure 2 flow: daemon registers with the device manager, the
    /// client requests a GPU through the XML config, connects with the lease
    /// id, and only sees its assigned device.
    #[test]
    fn end_to_end_device_manager_flow() {
        let mut cluster = LocalCluster::new(LinkModel::gigabit_ethernet());
        let transport: Arc<dyn gcf::Transport> = Arc::new(cluster.transport());

        // Device manager.
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        let dm_server =
            DeviceManagerServer::start(Arc::clone(&dm), Arc::clone(&transport), "devmngr").unwrap();

        // GPU server daemon in managed mode.
        let platform = Platform::gpu_server();
        let managed = ManagedDaemon::connect(
            Arc::clone(&transport),
            dm_server.address(),
            "gpuserver",
            "gpuserver",
            platform.devices(),
        )
        .unwrap();
        cluster.add_node_with_policy("gpuserver", &platform, managed.policy()).unwrap();

        // Client requests one GPU via the XML configuration file.
        let xml = r#"
            <devmngr>devmngr</devmngr>
            <devices>
              <device>
                <attribute name="TYPE">GPU</attribute>
              </device>
            </devices>
        "#;
        let config = parse_device_request(xml).unwrap();
        let client = cluster.detached_client("app", gcf::SimClock::new());
        let assignment = connect_via_device_manager(&client, &transport, &config).unwrap();
        assert_eq!(assignment.servers, vec!["gpuserver".to_string()]);

        // Only the single assigned GPU is visible, not all five devices.
        let devices = client.devices();
        assert_eq!(devices.len(), 1);
        assert_eq!(devices[0].kind(), dopencl::DeviceType::Gpu);

        // The manager shows one lease; after release everything is free.
        assert_eq!(query_status(&transport, dm_server.address()).unwrap(), (4, 1, 1));
        release_assignment(&transport, &assignment).unwrap();
        assert_eq!(query_status(&transport, dm_server.address()).unwrap(), (5, 0, 0));
    }

    #[test]
    fn assignment_failure_when_nothing_matches() {
        let transport: Arc<dyn gcf::Transport> =
            Arc::new(gcf::transport::inproc::InprocTransport::new());
        let dm = DeviceManager::new(SchedulingStrategy::FirstFit);
        let dm_server = DeviceManagerServer::start(dm, Arc::clone(&transport), "devmngr").unwrap();
        let result = request_assignment(
            &transport,
            dm_server.address(),
            "client",
            &[DeviceRequirement { count: 1, attributes: vec![("TYPE".into(), "GPU".into())] }],
        );
        assert!(matches!(result, Err(DevMgrError::NoMatchingDevices(_))));
    }
}
