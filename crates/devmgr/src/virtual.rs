//! Fractional **virtual devices**: the unit of allocation of the cluster
//! resource manager.
//!
//! A physical device registered by a daemon is carved into fractional
//! shares: each lease holds [`VirtualDevice`]s naming a physical device
//! plus a *compute quota* (in millis of one device, so a full device is
//! [`FULL_COMPUTE_MILLIS`]) and a *memory quota* in bytes.  The manager
//! maintains the invariant that the shares allocated on one physical
//! device never exceed its capacity — Σ `compute_millis` ≤ 1000 and
//! Σ `mem_bytes` ≤ the device's global memory.
//!
//! A share also carries a *floor* (`min_millis`): rebalancing under the
//! [`crate::Strategy::Fair`] policy and preemption under
//! [`crate::Strategy::Priority`] may shrink a grant, but never below its
//! floor — below that the client would rather be told the cluster is
//! saturated ([`crate::DevMgrError::Saturated`]) than receive an unusable
//! sliver.

use crate::protocol::DmShareRequest;

/// Compute capacity of one whole physical device, in millis.
pub const FULL_COMPUTE_MILLIS: u32 = 1000;

/// A fractional slice of one physical device, granted to one lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualDevice {
    /// Unique id of this virtual device (stable across migrations of the
    /// *lease*; a migration that moves the share to another physical device
    /// keeps the id).
    pub vd_id: u64,
    /// Index of the owning server in the manager's registration order.
    pub server: usize,
    /// Daemon-local id of the physical device the share is carved from.
    pub device: u64,
    /// Granted compute share in millis (1000 = the whole device).
    pub compute_millis: u32,
    /// Floor below which rebalancing/preemption may not shrink the grant.
    pub min_millis: u32,
    /// Granted device-memory quota in bytes (0 = unlimited/unspecified).
    pub mem_bytes: u64,
}

/// What a client asks the scheduler for (one entry of an assignment
/// request; `count` identical shares are placed on distinct devices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareRequest {
    /// Number of shares with these parameters, each on a distinct device.
    pub count: u32,
    /// Attribute constraints on the physical device (`TYPE`, `VENDOR`, ...,
    /// as in [`crate::DmDevice::satisfies`]).
    pub attributes: Vec<(String, String)>,
    /// Desired compute share in millis; the grant is capped by what is
    /// free (but never below `min_millis`).
    pub compute_millis: u32,
    /// Smallest acceptable grant.  0 is normalized to `compute_millis`
    /// (all-or-nothing).
    pub min_millis: u32,
    /// Required device-memory quota in bytes (0 = no requirement).
    pub mem_bytes: u64,
}

impl ShareRequest {
    /// A whole-device request (the legacy [`crate::DmRequirement`] shape):
    /// 1000 millis, all-or-nothing, no memory quota.
    pub fn whole_device(count: u32, attributes: Vec<(String, String)>) -> ShareRequest {
        ShareRequest {
            count,
            attributes,
            compute_millis: FULL_COMPUTE_MILLIS,
            min_millis: FULL_COMPUTE_MILLIS,
            mem_bytes: 0,
        }
    }

    /// The effective floor: `min_millis`, or the full desired share when no
    /// floor was given.
    pub fn floor(&self) -> u32 {
        if self.min_millis == 0 {
            self.compute_millis
        } else {
            self.min_millis.min(self.compute_millis)
        }
    }
}

impl From<&DmShareRequest> for ShareRequest {
    fn from(w: &DmShareRequest) -> ShareRequest {
        ShareRequest {
            count: w.count,
            attributes: w.attributes.clone(),
            compute_millis: w.compute_millis,
            min_millis: w.min_millis,
            mem_bytes: w.mem_bytes,
        }
    }
}

/// Σ compute millis of the shares in `allocs`.
pub fn allocated_millis<'a>(allocs: impl IntoIterator<Item = &'a VirtualDevice>) -> u32 {
    allocs.into_iter().map(|vd| vd.compute_millis).sum()
}

/// Σ memory quota of the shares in `allocs`.
pub fn allocated_mem<'a>(allocs: impl IntoIterator<Item = &'a VirtualDevice>) -> u64 {
    allocs.into_iter().map(|vd| vd.mem_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_device_request_shape() {
        let r = ShareRequest::whole_device(2, vec![("TYPE".into(), "GPU".into())]);
        assert_eq!(r.count, 2);
        assert_eq!(r.compute_millis, FULL_COMPUTE_MILLIS);
        assert_eq!(r.floor(), FULL_COMPUTE_MILLIS);
    }

    #[test]
    fn floor_normalization() {
        let mut r = ShareRequest::whole_device(1, vec![]);
        r.compute_millis = 400;
        r.min_millis = 0;
        assert_eq!(r.floor(), 400, "no floor means all-or-nothing");
        r.min_millis = 100;
        assert_eq!(r.floor(), 100);
        r.min_millis = 900;
        assert_eq!(r.floor(), 400, "floor is capped by the desired share");
    }

    #[test]
    fn allocation_sums() {
        let vds = [
            VirtualDevice {
                vd_id: 1,
                server: 0,
                device: 0,
                compute_millis: 300,
                min_millis: 100,
                mem_bytes: 64,
            },
            VirtualDevice {
                vd_id: 2,
                server: 0,
                device: 0,
                compute_millis: 500,
                min_millis: 100,
                mem_bytes: 32,
            },
        ];
        assert_eq!(allocated_millis(&vds), 800);
        assert_eq!(allocated_mem(&vds), 96);
    }
}
