//! Network and bus link models.
//!
//! The paper's evaluation runs on real hardware: an Infiniband cluster for
//! the Mandelbrot scalability study, a Gigabit Ethernet link between a
//! desktop PC and a GPU server for the OSEM and device-manager studies, and
//! the GPU server's PCI Express bus for the raw transfer measurements.
//!
//! This reproduction substitutes *parameterised link models*: every transfer
//! that crosses a link is accounted as `latency + per-message overhead +
//! bytes / effective bandwidth`.  The default parameters are calibrated from
//! the figures the paper reports (Section V-D):
//!
//! * Gigabit Ethernet: 125 MB/s theoretical, ~106 MB/s effective (iperf
//!   measures 86 % of theoretical),
//! * PCI Express (GPU server): strongly asymmetric — reads from the device
//!   are about 15× slower than writes to it,
//! * Infiniband: bandwidth comparable to PCI Express (250 MB/s – 12 GB/s
//!   per the paper; we model QDR-class 3.2 GB/s effective).

use std::time::Duration;

/// Number of bytes in a mebibyte; transfer sizes in the paper are given in MB
/// (binary) units.
pub const MIB: u64 = 1024 * 1024;

/// A point-to-point link (network or bus) with a simple linear cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Human-readable name used in reports.
    pub name: String,
    /// Effective sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency added to every transfer.
    pub latency: Duration,
    /// Fixed protocol overhead added per message/request (software stack,
    /// framing, interrupt handling).
    pub per_message_overhead: Duration,
}

impl LinkModel {
    /// Construct a link model from explicit parameters.
    pub fn new(
        name: impl Into<String>,
        bandwidth_bytes_per_sec: f64,
        latency: Duration,
        per_message_overhead: Duration,
    ) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        LinkModel { name: name.into(), bandwidth_bytes_per_sec, latency, per_message_overhead }
    }

    /// Gigabit Ethernet as measured in the paper: 125 MB/s theoretical,
    /// ~106 MB/s effective, ~100 µs software latency per message.
    pub fn gigabit_ethernet() -> Self {
        LinkModel::new(
            "Gigabit Ethernet",
            106.0 * MIB as f64,
            Duration::from_micros(80),
            Duration::from_micros(120),
        )
    }

    /// Theoretical (ideal) Gigabit Ethernet, used as the 100 % reference in
    /// the Figure 8 efficiency plot.
    pub fn gigabit_ethernet_theoretical() -> Self {
        LinkModel::new(
            "Gigabit Ethernet (theoretical)",
            125.0 * MIB as f64,
            Duration::ZERO,
            Duration::ZERO,
        )
    }

    /// Infiniband (QDR-class) interconnect of the Mandelbrot cluster.
    pub fn infiniband() -> Self {
        LinkModel::new(
            "Infiniband",
            3_200.0 * MIB as f64,
            Duration::from_micros(2),
            Duration::from_micros(5),
        )
    }

    /// An ideal, infinitely fast link (useful for isolating other costs in
    /// tests and ablations).
    pub fn ideal() -> Self {
        LinkModel::new("ideal", 1e15, Duration::ZERO, Duration::ZERO)
    }

    /// PCI Express *write* direction (host to device) of the paper's GPU
    /// server.  Calibrated so that Gigabit Ethernet is roughly 50× slower
    /// for writes (Section V-D).
    pub fn pcie_write() -> Self {
        LinkModel::new(
            "PCI Express (write)",
            5_400.0 * MIB as f64,
            Duration::from_micros(10),
            Duration::from_micros(10),
        )
    }

    /// PCI Express *read* direction (device to host): the paper measures
    /// reads to be up to 15× slower than writes on their server.
    pub fn pcie_read() -> Self {
        LinkModel::new(
            "PCI Express (read)",
            360.0 * MIB as f64,
            Duration::from_micros(10),
            Duration::from_micros(10),
        )
    }

    /// Modelled duration of a single bulk transfer of `bytes` bytes.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let seconds = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.latency + self.per_message_overhead + Duration::from_secs_f64(seconds)
    }

    /// Modelled duration of a request/response message exchange carrying
    /// `request_bytes` and `response_bytes` of payload.
    ///
    /// Message-based communication pays the per-message overhead twice (once
    /// per direction) plus two propagation latencies.
    pub fn round_trip_time(&self, request_bytes: u64, response_bytes: u64) -> Duration {
        let payload = (request_bytes + response_bytes) as f64 / self.bandwidth_bytes_per_sec;
        self.latency * 2 + self.per_message_overhead * 2 + Duration::from_secs_f64(payload)
    }

    /// Effective bandwidth achieved when transferring `bytes` in a single
    /// operation, as a fraction of this link's configured bandwidth of
    /// another (reference) link.
    pub fn efficiency_vs(&self, reference: &LinkModel, bytes: u64) -> f64 {
        let actual = self.transfer_time(bytes).as_secs_f64();
        let ideal = bytes as f64 / reference.bandwidth_bytes_per_sec;
        if actual <= 0.0 {
            return 1.0;
        }
        (ideal / actual).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_with_size() {
        let link = LinkModel::gigabit_ethernet();
        let t1 = link.transfer_time(MIB);
        let t64 = link.transfer_time(64 * MIB);
        let t1024 = link.transfer_time(1024 * MIB);
        assert!(t64 > t1);
        assert!(t1024 > t64);
        // 1024 MB at ~106 MB/s takes roughly 9.7 s.
        let secs = t1024.as_secs_f64();
        assert!((9.0..10.5).contains(&secs), "got {secs}");
    }

    #[test]
    fn gige_write_about_50x_slower_than_pcie_write() {
        let gige = LinkModel::gigabit_ethernet();
        let pcie = LinkModel::pcie_write();
        let ratio = gige.transfer_time(1024 * MIB).as_secs_f64()
            / pcie.transfer_time(1024 * MIB).as_secs_f64();
        assert!((40.0..60.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pcie_read_about_15x_slower_than_write() {
        let w = LinkModel::pcie_write();
        let r = LinkModel::pcie_read();
        let ratio =
            r.transfer_time(1024 * MIB).as_secs_f64() / w.transfer_time(1024 * MIB).as_secs_f64();
        assert!((12.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn efficiency_increases_with_transfer_size() {
        let gige = LinkModel::gigabit_ethernet();
        let theo = LinkModel::gigabit_ethernet_theoretical();
        let e1 = gige.efficiency_vs(&theo, MIB);
        let e1024 = gige.efficiency_vs(&theo, 1024 * MIB);
        assert!(e1024 > e1);
        assert!(e1024 < 0.9, "effective GigE stays below the iperf line");
        assert!(e1024 > 0.80);
    }

    #[test]
    fn round_trip_includes_two_overheads() {
        let link = LinkModel::gigabit_ethernet();
        let rtt = link.round_trip_time(64, 64);
        assert!(rtt >= link.latency * 2 + link.per_message_overhead * 2);
    }

    #[test]
    fn ideal_link_is_effectively_free() {
        let link = LinkModel::ideal();
        assert!(link.transfer_time(1024 * MIB) < Duration::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkModel::new("bad", 0.0, Duration::ZERO, Duration::ZERO);
    }
}
