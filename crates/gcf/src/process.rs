//! Process descriptors.
//!
//! GCF represents the communicating parties — the dOpenCL client and the
//! servers — as *process objects*.  This module provides the lightweight
//! descriptor type used by the session harness and the device manager to
//! identify nodes of the (simulated or real) distributed system.

use crate::wire::{Decode, Encode, Reader};
use crate::{GcfError, Result};

/// The role a process plays in the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The host system running the OpenCL application plus the dOpenCL
    /// client driver.
    Client,
    /// A node running a dOpenCL daemon in front of its native OpenCL
    /// implementation.
    Server,
    /// The central device manager (Section IV of the paper).
    DeviceManager,
}

impl Role {
    fn to_byte(self) -> u8 {
        match self {
            Role::Client => 0,
            Role::Server => 1,
            Role::DeviceManager => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            0 => Role::Client,
            1 => Role::Server,
            2 => Role::DeviceManager,
            other => return Err(GcfError::Codec(format!("invalid role byte {other}"))),
        })
    }
}

/// Identity of a process in the distributed system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessDescriptor {
    /// Human-readable node name (e.g. `gpuserver.example.com`).
    pub name: String,
    /// Transport address the process listens on (empty for clients).
    pub address: String,
    /// The process role.
    pub role: Role,
}

impl ProcessDescriptor {
    /// Descriptor for a client process.
    pub fn client(name: impl Into<String>) -> Self {
        ProcessDescriptor { name: name.into(), address: String::new(), role: Role::Client }
    }

    /// Descriptor for a server process listening at `address`.
    pub fn server(name: impl Into<String>, address: impl Into<String>) -> Self {
        ProcessDescriptor { name: name.into(), address: address.into(), role: Role::Server }
    }

    /// Descriptor for the device manager listening at `address`.
    pub fn device_manager(name: impl Into<String>, address: impl Into<String>) -> Self {
        ProcessDescriptor { name: name.into(), address: address.into(), role: Role::DeviceManager }
    }
}

impl Encode for ProcessDescriptor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.address.encode(buf);
        buf.push(self.role.to_byte());
    }
}

impl Decode for ProcessDescriptor {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let name = String::decode(r)?;
        let address = String::decode(r)?;
        let role = Role::from_byte(u8::decode(r)?)?;
        Ok(ProcessDescriptor { name, address, role })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = ProcessDescriptor::server("gpuserver", "inproc://gpuserver");
        assert_eq!(ProcessDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
        let c = ProcessDescriptor::client("desktop");
        assert_eq!(ProcessDescriptor::from_bytes(&c.to_bytes()).unwrap(), c);
        let m = ProcessDescriptor::device_manager("devmngr", "inproc://devmngr");
        assert_eq!(ProcessDescriptor::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn invalid_role_rejected() {
        let mut bytes = ProcessDescriptor::client("x").to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 77;
        assert!(ProcessDescriptor::from_bytes(&bytes).is_err());
    }
}
