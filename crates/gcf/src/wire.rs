//! Hand-written binary wire codec.
//!
//! Every protocol message exchanged between the dOpenCL client driver and the
//! daemons implements [`Encode`] and [`Decode`].  The format is a simple,
//! explicit little-endian byte layout: no external serialization crate is
//! used, which keeps the wire format stable and auditable and mirrors the
//! low-level framing a real middleware would define.

use crate::error::{GcfError, Result};

/// Serialize a value into bytes.
pub trait Encode {
    /// Append the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience helper returning a freshly encoded byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Deserialize a value from bytes.
pub trait Decode: Sized {
    /// Read a value from the reader, advancing its cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Convenience helper decoding from a full byte slice, requiring that all
    /// bytes are consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(GcfError::Codec(format!("{} trailing bytes after decode", r.remaining())));
        }
        Ok(v)
    }
}

/// Cursor over a byte slice used by [`Decode`] implementations.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `bytes` starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(GcfError::Codec(format!(
                "unexpected end of input: wanted {n}, have {}",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(slice);
        Ok(arr)
    }
}

macro_rules! impl_scalar {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self> {
                    Ok(<$ty>::from_le_bytes(r.take_array()?))
                }
            }
        )*
    };
}

impl_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(u64::decode(r)? as usize)
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(GcfError::Codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| GcfError::Codec(format!("invalid utf-8 string: {e}")))
    }
}

impl Encode for &str {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = u32::decode(r)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(GcfError::Codec(format!("invalid option tag {other}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Encode raw bytes with a length prefix (distinct from `Vec<u8>` only in
/// intent: used for opaque payloads).
pub fn encode_bytes(bytes: &[u8], buf: &mut Vec<u8>) {
    (bytes.len() as u32).encode(buf);
    buf.extend_from_slice(bytes);
}

/// Decode raw bytes written by [`encode_bytes`].
pub fn decode_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>> {
    let len = u32::decode(r)? as usize;
    Ok(r.take(len)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-2.25f64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello dOpenCL".to_string());
        roundtrip("ünïcödé ✓".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3, 4]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u32, "x".to_string()));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip(vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(matches!(u32::from_bytes(&bytes), Err(GcfError::Codec(_))));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = 5u64.to_bytes();
        assert!(u64::from_bytes(&bytes[..4]).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
    }

    #[test]
    fn invalid_option_tag_rejected() {
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&buf).is_err());
    }

    #[test]
    fn bytes_helpers_roundtrip() {
        let data = vec![9u8, 8, 7, 6];
        let mut buf = Vec::new();
        encode_bytes(&data, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_bytes(&mut r).unwrap(), data);
        assert!(r.is_empty());
    }
}
