//! Error type shared by all gcf operations.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GcfError>;

/// Errors produced by the communication framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcfError {
    /// The peer closed the connection (or was never reachable).
    Disconnected(String),
    /// No listener is registered under the requested address.
    AddressNotFound(String),
    /// An address is already in use by another listener.
    AddressInUse(String),
    /// A frame could not be decoded.
    Codec(String),
    /// An I/O error from the underlying socket.
    Io(String),
    /// A request timed out waiting for its response.
    Timeout(String),
    /// The operation is not valid in the current state.
    Protocol(String),
}

impl GcfError {
    /// Whether the error is transient: retrying the operation (possibly
    /// after reconnecting) may succeed.  Codec and protocol errors are
    /// deterministic and never retried; an address in use will not free
    /// itself by retrying either.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GcfError::Disconnected(_)
                | GcfError::AddressNotFound(_)
                | GcfError::Io(_)
                | GcfError::Timeout(_)
        )
    }
}

impl fmt::Display for GcfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcfError::Disconnected(who) => write!(f, "peer disconnected: {who}"),
            GcfError::AddressNotFound(a) => write!(f, "no listener at address: {a}"),
            GcfError::AddressInUse(a) => write!(f, "address already in use: {a}"),
            GcfError::Codec(m) => write!(f, "codec error: {m}"),
            GcfError::Io(m) => write!(f, "i/o error: {m}"),
            GcfError::Timeout(m) => write!(f, "timeout: {m}"),
            GcfError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for GcfError {}

impl From<std::io::Error> for GcfError {
    fn from(e: std::io::Error) -> Self {
        GcfError::Io(e.to_string())
    }
}
