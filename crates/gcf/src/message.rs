//! Frame format multiplexed over a single connection.
//!
//! dOpenCL uses two communication patterns: message-based (requests,
//! responses, notifications) and stream-based (bulk data).  Both are carried
//! over the same connection as [`Envelope`] frames distinguished by their
//! [`MessageKind`].

use crate::error::{GcfError, Result};
use crate::wire::{decode_bytes, encode_bytes, Decode, Encode, Reader};

/// The kind of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A request expecting exactly one [`MessageKind::Response`] with the
    /// same id.
    Request,
    /// The response to a request.
    Response,
    /// A one-way notification (e.g. an event status update).
    Notification,
    /// A chunk of a bulk data stream; the id identifies the stream.
    StreamData,
    /// Handshake frame announcing the peer's name.
    Hello,
    /// Orderly shutdown of the connection.
    Bye,
}

impl MessageKind {
    fn to_byte(self) -> u8 {
        match self {
            MessageKind::Request => 0,
            MessageKind::Response => 1,
            MessageKind::Notification => 2,
            MessageKind::StreamData => 3,
            MessageKind::Hello => 4,
            MessageKind::Bye => 5,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            0 => MessageKind::Request,
            1 => MessageKind::Response,
            2 => MessageKind::Notification,
            3 => MessageKind::StreamData,
            4 => MessageKind::Hello,
            5 => MessageKind::Bye,
            other => return Err(GcfError::Codec(format!("invalid message kind {other}"))),
        })
    }

    /// Whether a frame of this kind occupies no reply slot: the sender does
    /// not wait for an answer (notifications, stream chunks, shutdown).
    ///
    /// One-way frames are the backbone of the async command pipeline: event
    /// completions and bulk data travel without ever blocking a caller.
    pub fn is_one_way(self) -> bool {
        matches!(
            self,
            MessageKind::Notification
                | MessageKind::StreamData
                | MessageKind::Hello
                | MessageKind::Bye
        )
    }
}

/// A single frame exchanged between two endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Frame kind.
    pub kind: MessageKind,
    /// Correlation id: request/response pairs share an id; stream chunks use
    /// it as stream id.
    pub id: u64,
    /// Opaque payload (protocol-specific, encoded with [`crate::wire`]).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Create a request frame.
    pub fn request(id: u64, payload: Vec<u8>) -> Self {
        Envelope { kind: MessageKind::Request, id, payload }
    }

    /// Create a response frame answering request `id`.
    pub fn response(id: u64, payload: Vec<u8>) -> Self {
        Envelope { kind: MessageKind::Response, id, payload }
    }

    /// Create a notification frame.
    pub fn notification(id: u64, payload: Vec<u8>) -> Self {
        Envelope { kind: MessageKind::Notification, id, payload }
    }

    /// Create a bulk stream chunk for stream `id`.
    pub fn stream(id: u64, payload: Vec<u8>) -> Self {
        Envelope { kind: MessageKind::StreamData, id, payload }
    }

    /// Total size of the frame on the wire in bytes (header + payload).
    ///
    /// Used by the link models to account modelled transfer time.
    pub fn wire_size(&self) -> usize {
        // kind (1) + id (8) + length prefix (4) + payload
        1 + 8 + 4 + self.payload.len()
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.kind.to_byte());
        self.id.encode(buf);
        encode_bytes(&self.payload, buf);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let kind = MessageKind::from_byte(u8::decode(r)?)?;
        let id = u64::decode(r)?;
        let payload = decode_bytes(r)?;
        Ok(Envelope { kind, id, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Decode, Encode};

    #[test]
    fn envelope_roundtrip() {
        let env = Envelope::request(42, vec![1, 2, 3]);
        let bytes = env.to_bytes();
        assert_eq!(Envelope::from_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [
            MessageKind::Request,
            MessageKind::Response,
            MessageKind::Notification,
            MessageKind::StreamData,
            MessageKind::Hello,
            MessageKind::Bye,
        ] {
            let env = Envelope { kind, id: 7, payload: vec![9; 16] };
            assert_eq!(Envelope::from_bytes(&env.to_bytes()).unwrap(), env);
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        let env = Envelope::stream(3, vec![0u8; 1000]);
        assert_eq!(env.wire_size(), env.to_bytes().len());
    }

    #[test]
    fn one_way_kinds_expect_no_reply() {
        assert!(!MessageKind::Request.is_one_way());
        assert!(!MessageKind::Response.is_one_way());
        assert!(MessageKind::Notification.is_one_way());
        assert!(MessageKind::StreamData.is_one_way());
        assert!(MessageKind::Hello.is_one_way());
        assert!(MessageKind::Bye.is_one_way());
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut bytes = Envelope::request(1, vec![]).to_bytes();
        bytes[0] = 200;
        assert!(Envelope::from_bytes(&bytes).is_err());
    }
}
