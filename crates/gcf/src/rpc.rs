//! Request/response endpoint with notifications and bulk streams.
//!
//! [`Endpoint`] implements the two communication patterns dOpenCL needs on
//! top of a raw [`Connection`]:
//!
//! * **message-based** — [`Endpoint::call`] sends a request and blocks until
//!   the matching response arrives; [`Endpoint::notify`] sends a one-way
//!   notification; incoming requests and notifications are delivered to an
//!   [`EndpointHandler`],
//! * **stream-based** — [`Endpoint::send_bulk`] ships raw data in chunks and
//!   [`Endpoint::wait_bulk`] blocks until a complete bulk transfer for a
//!   given stream id has arrived.
//!
//! A background receiver thread owns the demultiplexing, so calls, streams
//! and notifications may be issued concurrently from any thread.

use crate::error::{GcfError, Result};
use crate::message::{Envelope, MessageKind};
use crate::transport::Connection;
use crossbeam_channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Chunk size used for bulk (stream-based) transfers.
pub const STREAM_CHUNK: usize = 1 << 20;

/// Default timeout for synchronous calls.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Handles frames initiated by the peer.
pub trait EndpointHandler: Send + Sync {
    /// Handle a request and produce the response payload.
    fn handle_request(&self, payload: &[u8]) -> Vec<u8>;

    /// Handle a one-way notification.
    fn handle_notification(&self, _payload: &[u8]) {}
}

/// A handler that rejects every request; suitable for pure-client endpoints
/// that only expect notifications they also ignore.
pub struct NullHandler;

impl EndpointHandler for NullHandler {
    fn handle_request(&self, _payload: &[u8]) -> Vec<u8> {
        Vec::new()
    }
}

/// Traffic counters, useful for tests and for charging link models.
///
/// The *sent* counters are bumped by [`Endpoint::call`], [`Endpoint::notify`]
/// and [`Endpoint::send_bulk`]; the *received* counters by the receiver
/// thread as frames are dispatched.  Snapshots can be subtracted
/// ([`TrafficStats::delta`]) to measure a region of interest, and added
/// (`+` / `+=`) to aggregate several endpoints — this is how the bench
/// harnesses turn "fewer round trips" into a recorded number.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Number of request frames sent.
    pub requests_sent: u64,
    /// Number of notification frames sent.
    pub notifications_sent: u64,
    /// Number of request frames received (and dispatched to the handler).
    pub requests_received: u64,
    /// Number of notification frames received.
    pub notifications_received: u64,
    /// Number of bulk stream chunk frames received.
    pub stream_chunks_received: u64,
    /// Total message payload bytes sent (requests + notifications + responses).
    pub message_bytes_sent: u64,
    /// Total bulk payload bytes sent.
    pub stream_bytes_sent: u64,
    /// Total bulk payload bytes received.
    pub stream_bytes_received: u64,
    /// Number of times a connection was re-established after a failure
    /// (bumped by connection supervisors, not by the endpoint itself).
    pub reconnects: u64,
    /// Number of request retries after a transient failure (bumped by
    /// retrying callers, not by the endpoint itself).
    pub retries: u64,
    /// Number of in-flight requests that failed without a response: calls
    /// whose send failed or timed out, plus calls pending when the
    /// connection died.
    pub failed_requests: u64,
}

impl TrafficStats {
    /// Total wire messages this endpoint initiated (requests +
    /// notifications); responses and stream chunks are not counted.
    pub fn messages_sent(&self) -> u64 {
        self.requests_sent + self.notifications_sent
    }

    /// Counter-wise difference against an `earlier` snapshot (saturating, so
    /// mismatched snapshots never panic).
    pub fn delta(&self, earlier: &TrafficStats) -> TrafficStats {
        TrafficStats {
            requests_sent: self.requests_sent.saturating_sub(earlier.requests_sent),
            notifications_sent: self.notifications_sent.saturating_sub(earlier.notifications_sent),
            requests_received: self.requests_received.saturating_sub(earlier.requests_received),
            notifications_received: self
                .notifications_received
                .saturating_sub(earlier.notifications_received),
            stream_chunks_received: self
                .stream_chunks_received
                .saturating_sub(earlier.stream_chunks_received),
            message_bytes_sent: self.message_bytes_sent.saturating_sub(earlier.message_bytes_sent),
            stream_bytes_sent: self.stream_bytes_sent.saturating_sub(earlier.stream_bytes_sent),
            stream_bytes_received: self
                .stream_bytes_received
                .saturating_sub(earlier.stream_bytes_received),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            retries: self.retries.saturating_sub(earlier.retries),
            failed_requests: self.failed_requests.saturating_sub(earlier.failed_requests),
        }
    }
}

impl std::ops::Add for TrafficStats {
    type Output = TrafficStats;

    fn add(self, rhs: TrafficStats) -> TrafficStats {
        TrafficStats {
            requests_sent: self.requests_sent + rhs.requests_sent,
            notifications_sent: self.notifications_sent + rhs.notifications_sent,
            requests_received: self.requests_received + rhs.requests_received,
            notifications_received: self.notifications_received + rhs.notifications_received,
            stream_chunks_received: self.stream_chunks_received + rhs.stream_chunks_received,
            message_bytes_sent: self.message_bytes_sent + rhs.message_bytes_sent,
            stream_bytes_sent: self.stream_bytes_sent + rhs.stream_bytes_sent,
            stream_bytes_received: self.stream_bytes_received + rhs.stream_bytes_received,
            reconnects: self.reconnects + rhs.reconnects,
            retries: self.retries + rhs.retries,
            failed_requests: self.failed_requests + rhs.failed_requests,
        }
    }
}

impl std::ops::AddAssign for TrafficStats {
    fn add_assign(&mut self, rhs: TrafficStats) {
        *self = *self + rhs;
    }
}

struct BulkBuffers {
    /// Partially received streams, keyed by stream id.
    partial: HashMap<u64, Vec<u8>>,
    /// Completed streams waiting to be claimed.
    complete: HashMap<u64, Vec<u8>>,
}

/// Callback invoked (once per connection loss) when the endpoint dies, so a
/// supervisor can schedule a reconnect.
pub type SupervisorCallback = Arc<dyn Fn(&str) + Send + Sync>;

/// Bidirectional RPC endpoint over a connection.
pub struct Endpoint {
    conn: Arc<dyn Connection>,
    next_id: AtomicU64,
    pending: Mutex<HashMap<u64, Sender<Vec<u8>>>>,
    bulk: Mutex<BulkBuffers>,
    bulk_cond: Condvar,
    stats: Mutex<TrafficStats>,
    call_timeout: Mutex<Duration>,
    closed: AtomicBool,
    name: String,
    supervisor: Mutex<Option<SupervisorCallback>>,
    supervisor_fired: AtomicBool,
}

impl Endpoint {
    /// Create an endpoint over `conn`, dispatching peer-initiated frames to
    /// `handler`.  Spawns the receiver thread.
    pub fn new(
        conn: Arc<dyn Connection>,
        handler: Arc<dyn EndpointHandler>,
        name: impl Into<String>,
    ) -> Arc<Self> {
        Self::new_init(conn, handler, name, |_| {})
    }

    /// Like [`Endpoint::new`], but runs `init` on the endpoint *before* the
    /// receiver thread starts.  Accept loops use this to hand the session
    /// handler a reference to its own endpoint: with [`Endpoint::new`] the
    /// first request can be dispatched before the caller has stored the
    /// endpoint anywhere, and a handler that replies "who asks? nobody yet"
    /// corrupts whatever that first request set up.
    pub fn new_init(
        conn: Arc<dyn Connection>,
        handler: Arc<dyn EndpointHandler>,
        name: impl Into<String>,
        init: impl FnOnce(&Arc<Endpoint>),
    ) -> Arc<Self> {
        let endpoint = Arc::new(Endpoint {
            conn,
            next_id: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            bulk: Mutex::new(BulkBuffers { partial: HashMap::new(), complete: HashMap::new() }),
            bulk_cond: Condvar::new(),
            stats: Mutex::new(TrafficStats::default()),
            call_timeout: Mutex::new(DEFAULT_CALL_TIMEOUT),
            closed: AtomicBool::new(false),
            name: name.into(),
            supervisor: Mutex::new(None),
            supervisor_fired: AtomicBool::new(false),
        });
        init(&endpoint);
        let weak = Arc::downgrade(&endpoint);
        let thread_name = format!("gcf-endpoint-{}", endpoint.name);
        std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || loop {
                let Some(ep) = weak.upgrade() else { break };
                if ep.closed.load(Ordering::Acquire) {
                    break;
                }
                let frame = match ep.conn.recv_timeout(Duration::from_millis(200)) {
                    Ok(frame) => frame,
                    Err(GcfError::Timeout(_)) => continue,
                    Err(e) => {
                        // The connection died under us: mark the endpoint
                        // closed so callers fail fast, wake every waiter,
                        // and tell the supervisor (if any) about the death.
                        ep.closed.store(true, Ordering::Release);
                        ep.fail_all_pending();
                        ep.fire_supervisor(&e.to_string());
                        break;
                    }
                };
                ep.dispatch(frame, &handler);
            })
            .expect("spawn endpoint receiver thread");
        endpoint
    }

    /// The peer's description.
    pub fn peer(&self) -> String {
        self.conn.peer()
    }

    /// The local endpoint name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the synchronous call timeout.
    pub fn set_call_timeout(&self, timeout: Duration) {
        *self.call_timeout.lock() = timeout;
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> TrafficStats {
        *self.stats.lock()
    }

    /// Whether the endpoint (and its connection) is still usable.
    pub fn is_open(&self) -> bool {
        !self.closed.load(Ordering::Acquire) && self.conn.is_open()
    }

    fn dispatch(self: &Arc<Self>, frame: Envelope, handler: &Arc<dyn EndpointHandler>) {
        match frame.kind {
            MessageKind::Response => {
                let waiter = self.pending.lock().remove(&frame.id);
                if let Some(tx) = waiter {
                    let _ = tx.send(frame.payload);
                }
            }
            MessageKind::Request => {
                self.stats.lock().requests_received += 1;
                let response = handler.handle_request(&frame.payload);
                self.stats.lock().message_bytes_sent += response.len() as u64;
                let _ = self.conn.send(Envelope::response(frame.id, response));
            }
            MessageKind::Notification => {
                self.stats.lock().notifications_received += 1;
                handler.handle_notification(&frame.payload);
            }
            MessageKind::StreamData => {
                self.stats.lock().stream_chunks_received += 1;
                self.accept_stream_chunk(frame.id, frame.payload);
            }
            MessageKind::Hello => {
                // Handshake frames carry no state we need to track here.
            }
            MessageKind::Bye => {
                self.closed.store(true, Ordering::Release);
                self.fail_all_pending();
                self.fire_supervisor("peer sent Bye");
            }
        }
    }

    fn accept_stream_chunk(&self, stream_id: u64, payload: Vec<u8>) {
        // Chunk layout: [last: u8][data...]
        if payload.is_empty() {
            return;
        }
        let last = payload[0] == 1;
        let data = &payload[1..];
        let mut bulk = self.bulk.lock();
        bulk.partial.entry(stream_id).or_default().extend_from_slice(data);
        self.stats.lock().stream_bytes_received += data.len() as u64;
        if last {
            let complete = bulk.partial.remove(&stream_id).unwrap_or_default();
            bulk.complete.insert(stream_id, complete);
            self.bulk_cond.notify_all();
        }
    }

    fn fail_all_pending(&self) {
        let abandoned = {
            let mut pending = self.pending.lock();
            let n = pending.len() as u64;
            pending.clear();
            // Dropping the senders wakes every caller with a RecvError.
            n
        };
        if abandoned > 0 {
            self.stats.lock().failed_requests += abandoned;
        }
        // Wake bulk waiters too, so they observe the closed endpoint instead
        // of sleeping out their full timeout.
        let _bulk = self.bulk.lock();
        self.bulk_cond.notify_all();
    }

    /// Install a callback fired (at most once) when the connection dies
    /// under the endpoint: the receiver thread hits a non-timeout error, or
    /// the peer says Bye.  A local [`Endpoint::close`] does not fire it.
    /// The callback receives a short reason string and runs on the receiver
    /// thread — it must not block on calls through this same endpoint.
    pub fn set_supervisor(&self, callback: Arc<dyn Fn(&str) + Send + Sync>) {
        *self.supervisor.lock() = Some(callback);
    }

    fn fire_supervisor(&self, reason: &str) {
        if self.supervisor_fired.swap(true, Ordering::AcqRel) {
            return;
        }
        let callback = self.supervisor.lock().clone();
        if let Some(cb) = callback {
            cb(reason);
        }
    }

    /// Allocate a fresh correlation / stream id.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Send a request and block for its response payload.
    pub fn call(&self, payload: Vec<u8>) -> Result<Vec<u8>> {
        if !self.is_open() {
            self.stats.lock().failed_requests += 1;
            return Err(GcfError::Disconnected(self.conn.peer()));
        }
        let id = self.allocate_id();
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(id, tx);
        {
            let mut stats = self.stats.lock();
            stats.requests_sent += 1;
            stats.message_bytes_sent += payload.len() as u64;
        }
        if let Err(e) = self.conn.send(Envelope::request(id, payload)) {
            self.pending.lock().remove(&id);
            self.stats.lock().failed_requests += 1;
            return Err(e);
        }
        let timeout = *self.call_timeout.lock();
        match rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                self.pending.lock().remove(&id);
                self.stats.lock().failed_requests += 1;
                Err(GcfError::Timeout(format!("call to {}", self.conn.peer())))
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                Err(GcfError::Disconnected(self.conn.peer()))
            }
        }
    }

    /// Send a one-way notification.
    pub fn notify(&self, payload: Vec<u8>) -> Result<()> {
        if !self.is_open() {
            return Err(GcfError::Disconnected(self.conn.peer()));
        }
        {
            let mut stats = self.stats.lock();
            stats.notifications_sent += 1;
            stats.message_bytes_sent += payload.len() as u64;
        }
        self.conn.send(Envelope::notification(self.allocate_id(), payload))
    }

    /// Send a bulk payload on stream `stream_id` (chunked; the receiver
    /// reassembles it and makes it available via [`Endpoint::wait_bulk`]).
    pub fn send_bulk(&self, stream_id: u64, data: &[u8]) -> Result<()> {
        if !self.is_open() {
            return Err(GcfError::Disconnected(self.conn.peer()));
        }
        self.stats.lock().stream_bytes_sent += data.len() as u64;
        if data.is_empty() {
            let payload = vec![1u8];
            return self.conn.send(Envelope::stream(stream_id, payload));
        }
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + STREAM_CHUNK).min(data.len());
            let last = end == data.len();
            let mut payload = Vec::with_capacity(1 + end - offset);
            payload.push(u8::from(last));
            payload.extend_from_slice(&data[offset..end]);
            self.conn.send(Envelope::stream(stream_id, payload))?;
            offset = end;
        }
        Ok(())
    }

    /// Block until a complete bulk transfer for `stream_id` has arrived and
    /// return its data.
    pub fn wait_bulk(&self, stream_id: u64, timeout: Duration) -> Result<Vec<u8>> {
        let mut bulk = self.bulk.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(data) = bulk.complete.remove(&stream_id) {
                return Ok(data);
            }
            if !self.is_open() {
                return Err(GcfError::Disconnected(self.conn.peer()));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(GcfError::Timeout(format!("bulk stream {stream_id}")));
            }
            let wait = (deadline - now).min(Duration::from_millis(100));
            self.bulk_cond.wait_for(&mut bulk, wait);
        }
    }

    /// Non-blocking check whether a bulk transfer has completed.
    pub fn try_take_bulk(&self, stream_id: u64) -> Option<Vec<u8>> {
        self.bulk.lock().complete.remove(&stream_id)
    }

    /// Abruptly sever the connection *without* telling the peer (no Bye
    /// frame).  The peer's receiver thread discovers the death through a
    /// receive error, exactly as if this process had crashed — used by the
    /// chaos harness to simulate daemon crashes.
    pub fn abort(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.conn.close();
        self.fail_all_pending();
    }

    /// Close the endpoint: notify the peer and shut the connection down.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.conn.send(Envelope { kind: MessageKind::Bye, id: 0, payload: Vec::new() });
        self.conn.close();
        self.fail_all_pending();
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            self.conn.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc::InprocTransport;
    use crate::transport::Transport;

    struct EchoHandler;
    impl EndpointHandler for EchoHandler {
        fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
            let mut out = payload.to_vec();
            out.reverse();
            out
        }
    }

    struct RecordingHandler {
        notes: Mutex<Vec<Vec<u8>>>,
    }
    impl EndpointHandler for RecordingHandler {
        fn handle_request(&self, payload: &[u8]) -> Vec<u8> {
            payload.to_vec()
        }
        fn handle_notification(&self, payload: &[u8]) {
            self.notes.lock().push(payload.to_vec());
        }
    }

    fn endpoint_pair(
        client_handler: Arc<dyn EndpointHandler>,
        server_handler: Arc<dyn EndpointHandler>,
    ) -> (Arc<Endpoint>, Arc<Endpoint>) {
        let t = InprocTransport::new();
        let listener = t.listen("srv").unwrap();
        let h = std::thread::spawn(move || listener.accept().unwrap());
        let client_conn = t.connect("srv").unwrap();
        let server_conn = h.join().unwrap();
        let client = Endpoint::new(client_conn, client_handler, "client");
        let server = Endpoint::new(server_conn, server_handler, "server");
        (client, server)
    }

    /// A handler that needs a reference to its own endpoint (the accept-loop
    /// pattern) must see it even when the peer's first request is already in
    /// flight when the endpoint is created — the race behind leases being
    /// registered with no endpoint to push to.
    #[test]
    fn init_runs_before_the_first_dispatch() {
        use std::sync::Weak;
        struct SelfAware {
            endpoint: Mutex<Option<Weak<Endpoint>>>,
        }
        impl EndpointHandler for SelfAware {
            fn handle_request(&self, _payload: &[u8]) -> Vec<u8> {
                vec![self.endpoint.lock().is_some() as u8]
            }
        }
        for _ in 0..50 {
            let t = InprocTransport::new();
            let listener = t.listen("srv").unwrap();
            let client_conn = t.connect("srv").unwrap();
            let client = Endpoint::new(client_conn, Arc::new(NullHandler), "client");
            // The request is on the wire before the server endpoint exists.
            let caller = std::thread::spawn(move || client.call(vec![42]).unwrap());
            let server_conn = listener.accept().unwrap();
            let handler = Arc::new(SelfAware { endpoint: Mutex::new(None) });
            let stored = Arc::clone(&handler);
            let _server = Endpoint::new_init(server_conn, handler, "server", move |ep| {
                *stored.endpoint.lock() = Some(Arc::downgrade(ep));
            });
            assert_eq!(caller.join().unwrap(), vec![1], "handler dispatched before init ran");
        }
    }

    #[test]
    fn call_gets_matching_response() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        let resp = client.call(vec![1, 2, 3]).unwrap();
        assert_eq!(resp, vec![3, 2, 1]);
        assert_eq!(client.stats().requests_sent, 1);
        assert_eq!(client.stats().messages_sent(), 1);
        assert_eq!(server.stats().requests_received, 1);
    }

    #[test]
    fn stats_snapshots_subtract_and_aggregate() {
        let (client, _server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        let before = client.stats();
        client.call(vec![1]).unwrap();
        client.call(vec![2]).unwrap();
        let delta = client.stats().delta(&before);
        assert_eq!(delta.requests_sent, 2);
        assert_eq!((delta + delta).requests_sent, 4);
        let mut sum = TrafficStats::default();
        sum += delta;
        assert_eq!(sum, delta);
        // Saturating: subtracting a *later* snapshot yields zeros, not a panic.
        assert_eq!(before.delta(&client.stats()).requests_sent, 0);
    }

    #[test]
    fn concurrent_calls_are_matched_by_id() {
        let (client, _server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        let client = Arc::clone(&client);
        let mut handles = Vec::new();
        for i in 0..16u8 {
            let c = Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                let resp = c.call(vec![i, i + 1, i + 2]).unwrap();
                assert_eq!(resp, vec![i + 2, i + 1, i]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn notifications_reach_the_handler() {
        let recorder = Arc::new(RecordingHandler { notes: Mutex::new(Vec::new()) });
        let (client, server) = endpoint_pair(Arc::clone(&recorder) as _, Arc::new(EchoHandler));
        let _ = client; // keep alive
        server.notify(vec![42]).unwrap();
        // Wait for async delivery.
        for _ in 0..100 {
            if !recorder.notes.lock().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(recorder.notes.lock().as_slice(), &[vec![42]]);
    }

    #[test]
    fn bulk_transfer_roundtrip_multi_chunk() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(NullHandler));
        let data: Vec<u8> = (0..3 * STREAM_CHUNK + 123).map(|i| (i % 251) as u8).collect();
        client.send_bulk(7, &data).unwrap();
        let received = server.wait_bulk(7, Duration::from_secs(5)).unwrap();
        assert_eq!(received, data);
        assert_eq!(client.stats().stream_bytes_sent, data.len() as u64);
        assert_eq!(server.stats().stream_bytes_received, data.len() as u64);
    }

    #[test]
    fn empty_bulk_transfer_completes() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(NullHandler));
        client.send_bulk(3, &[]).unwrap();
        let received = server.wait_bulk(3, Duration::from_secs(5)).unwrap();
        assert!(received.is_empty());
    }

    #[test]
    fn wait_bulk_times_out() {
        let (_client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(NullHandler));
        let err = server.wait_bulk(99, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, GcfError::Timeout(_)));
    }

    #[test]
    fn call_after_close_fails() {
        let (client, _server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        client.close();
        assert!(client.call(vec![1]).is_err());
    }

    #[test]
    fn supervisor_fires_once_on_peer_death() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        let fired = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&fired);
        client.set_supervisor(Arc::new(move |reason: &str| {
            sink.lock().push(reason.to_string());
        }));
        server.close();
        for _ in 0..100 {
            if !fired.lock().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fired.lock().len(), 1);
        assert!(!client.is_open());
    }

    #[test]
    fn local_close_does_not_fire_supervisor() {
        let (client, _server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        let fired = Arc::new(Mutex::new(0u32));
        let sink = Arc::clone(&fired);
        client.set_supervisor(Arc::new(move |_| *sink.lock() += 1));
        client.close();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(*fired.lock(), 0);
    }

    #[test]
    fn wait_bulk_fails_fast_when_peer_dies() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(NullHandler));
        let waiter = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let result = client.wait_bulk(5, Duration::from_secs(30));
            (result, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        server.close();
        let (result, elapsed) = waiter.join().unwrap();
        assert!(matches!(result.unwrap_err(), GcfError::Disconnected(_)));
        assert!(elapsed < Duration::from_secs(5), "waiter should not sleep out its timeout");
    }

    #[test]
    fn dead_connection_counts_failed_requests() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        server.close();
        std::thread::sleep(Duration::from_millis(50));
        client.set_call_timeout(Duration::from_millis(100));
        assert!(client.call(vec![1]).is_err());
        assert!(client.stats().failed_requests >= 1);
    }

    #[test]
    fn call_when_peer_closed_fails() {
        let (client, server) = endpoint_pair(Arc::new(NullHandler), Arc::new(EchoHandler));
        server.close();
        // Allow the Bye to propagate.
        std::thread::sleep(Duration::from_millis(50));
        client.set_call_timeout(Duration::from_millis(200));
        assert!(client.call(vec![1]).is_err());
    }
}
