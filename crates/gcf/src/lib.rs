//! # gcf — Generic Communication Framework substrate
//!
//! The dOpenCL paper builds its middleware on top of the *Generic
//! Communication Framework* (GCF), a part of the Real-Time Framework, which
//! provides two communication patterns between a client and its servers:
//!
//! * **message-based communication** — request/response exchanges used to
//!   execute OpenCL functions remotely and asynchronous notifications (e.g.
//!   event status updates), and
//! * **stream-based communication** — raw bulk data transfers (buffer uploads
//!   and downloads of up to several gigabytes).
//!
//! This crate is a from-scratch reimplementation of that substrate:
//!
//! * [`wire`] — a hand-written binary codec ([`wire::Encode`] /
//!   [`wire::Decode`]) used by every protocol message in the workspace,
//! * [`message`] — the frame/envelope format multiplexing requests,
//!   responses, notifications and bulk stream chunks over one connection,
//! * [`transport`] — the [`transport::Transport`] abstraction with an
//!   in-process implementation (deterministic, used by tests and benches) and
//!   a real TCP implementation (length-prefixed frames over sockets),
//! * [`rpc`] — an [`rpc::Endpoint`] providing synchronous calls, asynchronous
//!   notifications and bulk streams on top of a connection,
//! * [`retry`] — exponential backoff with deterministic jitter
//!   ([`retry::retry_with_backoff`]) used by the client driver's connection
//!   supervisor to reconnect after a daemon crash,
//! * [`linkmodel`] — parameterised bandwidth/latency models (Gigabit
//!   Ethernet, Infiniband, PCI Express, ideal) used to account *modelled*
//!   transfer time, and
//! * [`simtime`] — the simulation-time ledger (initialization / execution /
//!   data-transfer phases) that the figure harnesses report.
//!
//! The dOpenCL client driver and daemon only ever talk to each other through
//! the traits defined here, so the same protocol code runs unchanged over the
//! in-process transport and over TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod linkmodel;
pub mod message;
pub mod process;
pub mod retry;
pub mod rpc;
pub mod simtime;
pub mod transport;
pub mod wire;

pub use error::{GcfError, Result};
pub use linkmodel::LinkModel;
pub use message::{Envelope, MessageKind};
pub use retry::{retry_with_backoff, Backoff};
pub use rpc::Endpoint;
pub use simtime::{PhaseBreakdown, SimClock};
pub use transport::{Connection, Listener, Transport};
