//! Retry with exponential backoff and deterministic jitter.
//!
//! The client driver's connection supervisor uses [`retry_with_backoff`] to
//! reconnect to a crashed daemon: transient errors ([`GcfError::is_retryable`])
//! are retried with exponentially growing, jittered delays; permanent errors
//! abort immediately.
//!
//! Jitter is derived from a splitmix64 hash of the policy seed and the
//! attempt number, so a given policy always produces the same delay sequence
//! — tests can assert exact bounds without a random number generator (the
//! workspace deliberately carries no `rand` dependency in `gcf`).

use crate::error::{GcfError, Result};
use std::time::Duration;

/// Exponential backoff policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound for the (pre-jitter) delay.
    pub max_delay: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction: the delay is scaled by a factor in
    /// `[1, 1 + jitter)`, deterministically derived from `seed`.
    pub jitter: f64,
    /// Give up after this many attempts (total, including the first).
    pub max_attempts: u32,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 5,
            seed: 0x5eed_dc1f,
        }
    }
}

impl Backoff {
    /// A fast policy for tests: millisecond-scale delays.
    pub fn fast() -> Self {
        Backoff {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            ..Backoff::default()
        }
    }

    /// The delay to sleep before retry number `attempt` (0-based: the delay
    /// after the first failure is `delay_for(0)`).  Deterministic for a given
    /// policy.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self.multiplier.max(1.0).powi(attempt.min(63) as i32);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.max_delay.as_secs_f64());
        let unit = splitmix64(self.seed ^ u64::from(attempt)) as f64 / u64::MAX as f64;
        let jittered = capped * (1.0 + self.jitter.max(0.0) * unit);
        Duration::from_secs_f64(jittered)
    }
}

/// splitmix64: a tiny, high-quality mixing function (public domain
/// constants from Steele et al.), enough to decorrelate jitter between
/// attempts without a PRNG dependency.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `op` until it succeeds, a non-retryable error occurs, or the policy's
/// attempt budget is exhausted.  `op` receives the 0-based attempt number.
/// Sleeps [`Backoff::delay_for`] between attempts.
pub fn retry_with_backoff<T>(policy: &Backoff, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut last = GcfError::Protocol("retry with zero attempts".to_string());
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                std::thread::sleep(policy.delay_for(attempt));
                last = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let policy = Backoff {
            base: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.5,
            max_attempts: 8,
            seed: 42,
        };
        for attempt in 0..6 {
            let nominal = 10.0e-3 * 2.0f64.powi(attempt as i32);
            let d = policy.delay_for(attempt).as_secs_f64();
            assert!(d >= nominal, "attempt {attempt}: {d} < {nominal}");
            assert!(d < nominal * 1.5, "attempt {attempt}: {d} >= {}", nominal * 1.5);
        }
        // Capped at max_delay (pre-jitter).
        let d = policy.delay_for(20).as_secs_f64();
        assert!((1.0..1.5).contains(&d));
    }

    #[test]
    fn delays_are_deterministic() {
        let policy = Backoff::default();
        assert_eq!(policy.delay_for(3), policy.delay_for(3));
    }

    #[test]
    fn retries_until_success() {
        let calls = AtomicU32::new(0);
        let result = retry_with_backoff(&Backoff::fast(), |_| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(GcfError::Disconnected("flaky".to_string()))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let result: Result<()> = retry_with_backoff(&Backoff::fast(), |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(GcfError::Timeout("always".to_string()))
        });
        assert!(matches!(result.unwrap_err(), GcfError::Timeout(_)));
        assert_eq!(calls.load(Ordering::SeqCst), Backoff::fast().max_attempts);
    }

    #[test]
    fn non_retryable_errors_abort_immediately() {
        let calls = AtomicU32::new(0);
        let result: Result<()> = retry_with_backoff(&Backoff::fast(), |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(GcfError::Codec("bad frame".to_string()))
        });
        assert!(matches!(result.unwrap_err(), GcfError::Codec(_)));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
