//! Simulation-time accounting.
//!
//! The figures in the paper report wall-clock seconds measured on the
//! authors' hardware, decomposed into *initialization*, *execution* and
//! *data transfer* (Figures 4 and 6 use exactly this stacked decomposition).
//! Because this reproduction replaces the hardware with link and device
//! models, every component records *modelled* durations into a
//! [`PhaseBreakdown`]; harnesses combine breakdowns serially (phases that
//! follow each other) or in parallel (work spread over devices).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// The three phases the paper's stacked bar charts distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Program initialization: connecting to servers, creating contexts,
    /// building programs.
    Initialization,
    /// Kernel execution on devices.
    Execution,
    /// Host↔device and client↔server data transfer.
    DataTransfer,
}

/// Modelled time split by [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Time spent in initialization.
    pub initialization: Duration,
    /// Time spent executing kernels.
    pub execution: Duration,
    /// Time spent transferring data.
    pub data_transfer: Duration,
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn zero() -> Self {
        PhaseBreakdown::default()
    }

    /// Add `d` to the given phase.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        match phase {
            Phase::Initialization => self.initialization += d,
            Phase::Execution => self.execution += d,
            Phase::DataTransfer => self.data_transfer += d,
        }
    }

    /// Total modelled time across all phases.
    pub fn total(&self) -> Duration {
        self.initialization + self.execution + self.data_transfer
    }

    /// Combine two breakdowns that happen one after the other.
    pub fn merge_serial(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            initialization: self.initialization + other.initialization,
            execution: self.execution + other.execution,
            data_transfer: self.data_transfer + other.data_transfer,
        }
    }

    /// Combine two breakdowns that happen concurrently (e.g. two devices
    /// working on disjoint tiles): each phase takes as long as the slower of
    /// the two.
    pub fn merge_parallel(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            initialization: self.initialization.max(other.initialization),
            execution: self.execution.max(other.execution),
            data_transfer: self.data_transfer.max(other.data_transfer),
        }
    }

    /// Parallel-merge an iterator of breakdowns (empty iterator ⇒ zero).
    pub fn parallel_over<I: IntoIterator<Item = PhaseBreakdown>>(iter: I) -> PhaseBreakdown {
        iter.into_iter().fold(PhaseBreakdown::zero(), |acc, b| acc.merge_parallel(&b))
    }

    /// Serial-merge an iterator of breakdowns.
    pub fn serial_over<I: IntoIterator<Item = PhaseBreakdown>>(iter: I) -> PhaseBreakdown {
        iter.into_iter().fold(PhaseBreakdown::zero(), |acc, b| acc.merge_serial(&b))
    }
}

/// A shared, thread-safe ledger of modelled time.
///
/// The dOpenCL client driver, the daemons and the virtual OpenCL runtime all
/// hold a clone of the same `SimClock` and charge their modelled costs to it.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<Mutex<PhaseBreakdown>>,
}

impl SimClock {
    /// Create a new clock starting at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charge `d` of modelled time to `phase`.
    pub fn charge(&self, phase: Phase, d: Duration) {
        self.inner.lock().add(phase, d);
    }

    /// Snapshot of the accumulated breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        *self.inner.lock()
    }

    /// Reset the ledger to zero and return the previous breakdown.
    pub fn take(&self) -> PhaseBreakdown {
        std::mem::take(&mut *self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_per_phase() {
        let clock = SimClock::new();
        clock.charge(Phase::Initialization, Duration::from_millis(10));
        clock.charge(Phase::Execution, Duration::from_millis(20));
        clock.charge(Phase::Execution, Duration::from_millis(5));
        clock.charge(Phase::DataTransfer, Duration::from_millis(1));
        let b = clock.breakdown();
        assert_eq!(b.initialization, Duration::from_millis(10));
        assert_eq!(b.execution, Duration::from_millis(25));
        assert_eq!(b.data_transfer, Duration::from_millis(1));
        assert_eq!(b.total(), Duration::from_millis(36));
    }

    #[test]
    fn clones_share_the_ledger() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clone.charge(Phase::Execution, Duration::from_secs(1));
        assert_eq!(clock.breakdown().execution, Duration::from_secs(1));
    }

    #[test]
    fn take_resets_the_ledger() {
        let clock = SimClock::new();
        clock.charge(Phase::Execution, Duration::from_secs(2));
        let taken = clock.take();
        assert_eq!(taken.execution, Duration::from_secs(2));
        assert_eq!(clock.breakdown(), PhaseBreakdown::zero());
    }

    #[test]
    fn serial_merge_adds_parallel_merge_maxes() {
        let a = PhaseBreakdown {
            initialization: Duration::from_secs(1),
            execution: Duration::from_secs(4),
            data_transfer: Duration::from_secs(2),
        };
        let b = PhaseBreakdown {
            initialization: Duration::from_secs(2),
            execution: Duration::from_secs(3),
            data_transfer: Duration::from_secs(5),
        };
        let s = a.merge_serial(&b);
        assert_eq!(s.initialization, Duration::from_secs(3));
        assert_eq!(s.execution, Duration::from_secs(7));
        let p = a.merge_parallel(&b);
        assert_eq!(p.initialization, Duration::from_secs(2));
        assert_eq!(p.execution, Duration::from_secs(4));
        assert_eq!(p.data_transfer, Duration::from_secs(5));
    }

    #[test]
    fn parallel_over_empty_is_zero() {
        assert_eq!(PhaseBreakdown::parallel_over(std::iter::empty()), PhaseBreakdown::zero());
    }
}
