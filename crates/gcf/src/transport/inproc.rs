//! In-process transport based on crossbeam channels.
//!
//! Connections are pairs of unbounded channels; listeners are registered in a
//! per-transport address table.  This transport is deterministic and fast,
//! which makes it the default for unit tests, integration tests and the
//! figure harnesses.  A single [`InprocTransport`] instance models one
//! isolated "network"; addresses are plain strings (e.g. `"server0"`).

use super::{Connection, Listener, Transport};
use crate::error::{GcfError, Result};
use crate::message::Envelope;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One half of an in-process duplex connection.
pub struct InprocConnection {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
    peer: String,
    open: Arc<AtomicBool>,
}

impl InprocConnection {
    fn pair(client_name: &str, server_name: &str) -> (Arc<Self>, Arc<Self>) {
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let open = Arc::new(AtomicBool::new(true));
        let client = Arc::new(InprocConnection {
            tx: c2s_tx,
            rx: s2c_rx,
            peer: server_name.to_string(),
            open: Arc::clone(&open),
        });
        let server = Arc::new(InprocConnection {
            tx: s2c_tx,
            rx: c2s_rx,
            peer: client_name.to_string(),
            open,
        });
        (client, server)
    }
}

impl Connection for InprocConnection {
    fn send(&self, env: Envelope) -> Result<()> {
        if !self.open.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected(self.peer.clone()));
        }
        self.tx.send(env).map_err(|_| GcfError::Disconnected(self.peer.clone()))
    }

    fn recv(&self) -> Result<Envelope> {
        if !self.open.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected(self.peer.clone()));
        }
        // Poll so that a concurrent close() unblocks us.
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) => return Ok(env),
                Err(RecvTimeoutError::Timeout) => {
                    if !self.open.load(Ordering::Acquire) {
                        return Err(GcfError::Disconnected(self.peer.clone()));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(GcfError::Disconnected(self.peer.clone()))
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(env),
            Err(RecvTimeoutError::Timeout) => {
                Err(GcfError::Timeout(format!("recv from {}", self.peer)))
            }
            Err(RecvTimeoutError::Disconnected) => Err(GcfError::Disconnected(self.peer.clone())),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn close(&self) {
        self.open.store(false, Ordering::Release);
    }

    fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }
}

/// Address table shared by every connection of one in-process "network".
type Registry = Arc<Mutex<HashMap<String, Sender<Arc<dyn Connection>>>>>;

struct InprocListenerInner {
    rx: Receiver<Arc<dyn Connection>>,
    addr: String,
    registry: Registry,
}

/// Listener half of the in-process transport.
pub struct InprocListener {
    inner: InprocListenerInner,
}

impl Listener for InprocListener {
    fn accept(&self) -> Result<Arc<dyn Connection>> {
        self.inner
            .rx
            .recv()
            .map_err(|_| GcfError::Disconnected(format!("listener {}", self.inner.addr)))
    }

    fn local_addr(&self) -> String {
        self.inner.addr.clone()
    }

    fn shutdown(&self) {
        self.inner.registry.lock().remove(&self.inner.addr);
    }
}

impl Drop for InprocListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-process transport: a private address table plus channel-backed
/// connections.
#[derive(Clone, Default)]
pub struct InprocTransport {
    registry: Registry,
}

impl InprocTransport {
    /// Create a new, empty in-process "network".
    pub fn new() -> Self {
        InprocTransport::default()
    }

    /// Number of registered listeners (diagnostics / tests).
    pub fn listener_count(&self) -> usize {
        self.registry.lock().len()
    }
}

impl Transport for InprocTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        let mut reg = self.registry.lock();
        if reg.contains_key(addr) {
            return Err(GcfError::AddressInUse(addr.to_string()));
        }
        let (tx, rx) = unbounded();
        reg.insert(addr.to_string(), tx);
        Ok(Box::new(InprocListener {
            inner: InprocListenerInner {
                rx,
                addr: addr.to_string(),
                registry: Arc::clone(&self.registry),
            },
        }))
    }

    fn connect(&self, addr: &str) -> Result<Arc<dyn Connection>> {
        let acceptor = {
            let reg = self.registry.lock();
            reg.get(addr).cloned().ok_or_else(|| GcfError::AddressNotFound(addr.to_string()))?
        };
        let (client, server) = InprocConnection::pair("client", addr);
        acceptor
            .send(server as Arc<dyn Connection>)
            .map_err(|_| GcfError::AddressNotFound(addr.to_string()))?;
        Ok(client as Arc<dyn Connection>)
    }

    fn name(&self) -> &'static str {
        "inproc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;

    #[test]
    fn duplicate_listen_rejected() {
        let t = InprocTransport::new();
        let _l = t.listen("a").unwrap();
        assert!(matches!(t.listen("a"), Err(GcfError::AddressInUse(_))));
    }

    #[test]
    fn listener_shutdown_unregisters_address() {
        let t = InprocTransport::new();
        {
            let _l = t.listen("a").unwrap();
            assert_eq!(t.listener_count(), 1);
        }
        assert_eq!(t.listener_count(), 0);
        // Address can be reused after the listener is dropped.
        let _l2 = t.listen("a").unwrap();
    }

    #[test]
    fn recv_timeout_expires() {
        let t = InprocTransport::new();
        let l = t.listen("srv").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        let conn = t.connect("srv").unwrap();
        let _server = h.join().unwrap();
        let err = conn.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, GcfError::Timeout(_)));
    }

    #[test]
    fn messages_preserve_fifo_order() {
        let t = InprocTransport::new();
        let l = t.listen("srv").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        let conn = t.connect("srv").unwrap();
        let server = h.join().unwrap();
        for i in 0..100u64 {
            conn.send(Envelope::request(i, vec![])).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(server.recv().unwrap().id, i);
        }
    }

    #[test]
    fn separate_transports_are_isolated() {
        let t1 = InprocTransport::new();
        let t2 = InprocTransport::new();
        let _l = t1.listen("shared").unwrap();
        assert!(t2.connect("shared").is_err());
    }
}
