//! Fault-injection wrapper around any [`Connection`].
//!
//! Used by failure-injection tests to verify that the dOpenCL client driver,
//! daemon and device manager behave correctly when a peer disappears
//! mid-conversation (Section IV-C of the paper: devices must be released
//! when an application terminates abnormally or the client is disconnected).
//!
//! Faults are scripted through a [`ChaosPolicy`]: fail after a send budget,
//! silently drop or duplicate every Nth frame, delay frames, or kill the
//! connection in the middle of a bulk stream.  [`ChaosTransport`] applies a
//! per-address policy to every connection made through an inner transport,
//! which is how the cluster harness simulates a daemon crash.

use super::{Connection, Listener, Transport};
use crate::error::{GcfError, Result};
use crate::message::{Envelope, MessageKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Scripted fault behaviour for a [`FaultyConnection`].
///
/// The default policy injects no faults at all; each field enables one kind
/// of misbehaviour.  Counters for the "every Nth" fields share a single
/// attempt counter, so `drop_every: 3` drops the 3rd, 6th, 9th... frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosPolicy {
    /// Switch to the failing state after this many frames have reached the
    /// wrapped connection (0 = unlimited).
    pub fail_after_sends: u64,
    /// Silently swallow every Nth frame (0 = never drop).
    pub drop_every: u64,
    /// Send every Nth frame twice (0 = never duplicate).
    pub duplicate_every: u64,
    /// Artificial delay applied to every send.
    pub delay: Duration,
    /// Kill the connection (and close the wrapped connection, so the peer
    /// notices) after this many bulk stream chunks (0 = unlimited).
    pub fail_after_stream_chunks: u64,
}

impl ChaosPolicy {
    /// A policy that injects no faults.
    pub fn none() -> Self {
        ChaosPolicy::default()
    }

    /// A policy that fails after `n` successful sends.
    pub fn fail_after(n: u64) -> Self {
        ChaosPolicy { fail_after_sends: n, ..ChaosPolicy::default() }
    }
}

/// Wraps a connection and misbehaves according to a [`ChaosPolicy`].
pub struct FaultyConnection {
    inner: Arc<dyn Connection>,
    failing: AtomicBool,
    policy: Mutex<ChaosPolicy>,
    /// Frames that actually reached the wrapped connection's `send`.
    sends: AtomicU64,
    /// Send attempts that passed the failing/budget gates (drives the
    /// every-Nth drop/duplicate selection).
    attempts: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    stream_chunks: AtomicU64,
}

impl FaultyConnection {
    /// Wrap `inner`; the connection behaves normally until
    /// [`FaultyConnection::set_failing`] is called or the installed
    /// [`ChaosPolicy`] triggers.
    pub fn new(inner: Arc<dyn Connection>) -> Arc<Self> {
        FaultyConnection::with_policy(inner, ChaosPolicy::none())
    }

    /// Wrap `inner` with `policy` installed from the start.
    pub fn with_policy(inner: Arc<dyn Connection>, policy: ChaosPolicy) -> Arc<Self> {
        Arc::new(FaultyConnection {
            inner,
            failing: AtomicBool::new(false),
            policy: Mutex::new(policy),
            sends: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            stream_chunks: AtomicU64::new(0),
        })
    }

    /// Install a new policy (replaces the previous one; counters keep
    /// running).
    pub fn set_policy(&self, policy: ChaosPolicy) {
        *self.policy.lock() = policy;
    }

    /// The currently installed policy.
    pub fn policy(&self) -> ChaosPolicy {
        *self.policy.lock()
    }

    /// Start (or stop) failing every operation.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::Release);
    }

    /// Automatically switch to the failing state after `n` successful sends.
    pub fn fail_after_sends(&self, n: u64) {
        self.policy.lock().fail_after_sends = n;
    }

    /// Kill the connection immediately: every further operation fails and
    /// the wrapped connection is closed so the peer notices promptly.
    pub fn kill(&self) {
        self.failing.store(true, Ordering::Release);
        self.inner.close();
    }

    /// Number of frames that reached the wrapped connection's `send` (frames
    /// rejected by the budget or swallowed by `drop_every` are not counted;
    /// duplicated frames count twice).
    pub fn sent_count(&self) -> u64 {
        self.sends.load(Ordering::Acquire)
    }

    /// Number of frames silently dropped by the policy.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Number of frames sent twice by the policy.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated.load(Ordering::Acquire)
    }

    /// Number of bulk stream chunks seen so far.
    pub fn stream_chunk_count(&self) -> u64 {
        self.stream_chunks.load(Ordering::Acquire)
    }

    fn check(&self) -> Result<()> {
        if self.failing.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected("injected fault".to_string()));
        }
        Ok(())
    }
}

impl Connection for FaultyConnection {
    fn send(&self, env: Envelope) -> Result<()> {
        self.check()?;
        let policy = *self.policy.lock();
        if policy.fail_after_sends != 0
            && self.sends.load(Ordering::Acquire) >= policy.fail_after_sends
        {
            self.failing.store(true, Ordering::Release);
            return Err(GcfError::Disconnected("injected fault (send budget)".to_string()));
        }
        if env.kind == MessageKind::StreamData {
            let chunk = self.stream_chunks.fetch_add(1, Ordering::AcqRel) + 1;
            if policy.fail_after_stream_chunks != 0 && chunk > policy.fail_after_stream_chunks {
                // Killed mid-stream: close the wrapped connection too, so the
                // peer's receiver fails instead of waiting out its timeout.
                self.kill();
                return Err(GcfError::Disconnected(
                    "injected fault (killed mid-stream)".to_string(),
                ));
            }
        }
        if !policy.delay.is_zero() {
            std::thread::sleep(policy.delay);
        }
        let attempt = self.attempts.fetch_add(1, Ordering::AcqRel) + 1;
        if policy.drop_every != 0 && attempt.is_multiple_of(policy.drop_every) {
            self.dropped.fetch_add(1, Ordering::AcqRel);
            return Ok(());
        }
        if policy.duplicate_every != 0 && attempt.is_multiple_of(policy.duplicate_every) {
            self.duplicated.fetch_add(1, Ordering::AcqRel);
            self.sends.fetch_add(1, Ordering::AcqRel);
            self.inner.send(env.clone())?;
        }
        self.sends.fetch_add(1, Ordering::AcqRel);
        self.inner.send(env)
    }

    fn recv(&self) -> Result<Envelope> {
        self.check()?;
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope> {
        self.check()?;
        self.inner.recv_timeout(timeout)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }

    fn close(&self) {
        self.inner.close();
    }

    fn is_open(&self) -> bool {
        !self.failing.load(Ordering::Acquire) && self.inner.is_open()
    }
}

/// A transport that wraps every outgoing connection in a
/// [`FaultyConnection`], keyed by target address.
///
/// The cluster chaos harness connects its clients through a
/// `ChaosTransport`; killing a node is then
/// [`ChaosTransport::kill`] (sever all client connections to the address)
/// plus shutting the daemon itself down.
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    state: Arc<Mutex<ChaosState>>,
}

#[derive(Default)]
struct ChaosState {
    /// Policy applied to new (and retroactively to live) connections per
    /// target address.
    policies: HashMap<String, ChaosPolicy>,
    /// Live wrapped connections per target address.
    live: HashMap<String, Vec<Weak<FaultyConnection>>>,
}

impl ChaosTransport {
    /// Wrap `inner`; connections behave normally until a policy is set or a
    /// node is killed.
    pub fn new(inner: Arc<dyn Transport>) -> Arc<Self> {
        Arc::new(ChaosTransport { inner, state: Arc::new(Mutex::new(ChaosState::default())) })
    }

    /// Apply `policy` to all current and future connections to `address`.
    pub fn set_policy(&self, address: &str, policy: ChaosPolicy) {
        let mut state = self.state.lock();
        state.policies.insert(address.to_string(), policy);
        if let Some(conns) = state.live.get_mut(address) {
            conns.retain(|w| {
                if let Some(conn) = w.upgrade() {
                    conn.set_policy(policy);
                    true
                } else {
                    false
                }
            });
        }
    }

    /// Kill every live connection to `address` (and make future connection
    /// attempts fail until [`ChaosTransport::revive`] is called).
    pub fn kill(&self, address: &str) {
        let mut state = self.state.lock();
        state.policies.insert(address.to_string(), ChaosPolicy::fail_after(u64::MAX));
        if let Some(conns) = state.live.remove(address) {
            for conn in conns.iter().filter_map(Weak::upgrade) {
                conn.kill();
            }
        }
        state.live.insert(address.to_string(), Vec::new());
    }

    /// Clear the policy for `address`: future connections behave normally.
    pub fn revive(&self, address: &str) {
        self.state.lock().policies.remove(address);
    }

    /// The live wrapped connections to `address` (for scripting individual
    /// faults in tests).
    pub fn connections(&self, address: &str) -> Vec<Arc<FaultyConnection>> {
        let mut state = self.state.lock();
        match state.live.get_mut(address) {
            Some(conns) => {
                conns.retain(|w| w.strong_count() > 0);
                conns.iter().filter_map(Weak::upgrade).collect()
            }
            None => Vec::new(),
        }
    }
}

impl Transport for ChaosTransport {
    fn listen(&self, address: &str) -> Result<Box<dyn Listener>> {
        self.inner.listen(address)
    }

    fn connect(&self, address: &str) -> Result<Arc<dyn Connection>> {
        let policy = self.state.lock().policies.get(address).copied().unwrap_or_default();
        if policy.fail_after_sends == u64::MAX {
            // Killed node: refuse the connection outright, like a dead host.
            return Err(GcfError::Disconnected(format!("injected fault (node {address} is down)")));
        }
        let conn = self.inner.connect(address)?;
        let faulty = FaultyConnection::with_policy(conn, policy);
        self.state
            .lock()
            .live
            .entry(address.to_string())
            .or_default()
            .push(Arc::downgrade(&faulty));
        Ok(faulty)
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc::InprocTransport;
    use crate::transport::Transport;

    fn connected_pair() -> (Arc<dyn Connection>, Arc<dyn Connection>) {
        let t = InprocTransport::new();
        let l = t.listen("srv").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        let client = t.connect("srv").unwrap();
        let server = h.join().unwrap();
        (client, server)
    }

    #[test]
    fn passes_through_until_failing() {
        let (client, server) = connected_pair();
        let faulty = FaultyConnection::new(client);
        faulty.send(Envelope::request(1, vec![])).unwrap();
        assert_eq!(server.recv().unwrap().id, 1);
        faulty.set_failing(true);
        assert!(faulty.send(Envelope::request(2, vec![])).is_err());
        assert!(!faulty.is_open());
    }

    #[test]
    fn send_budget_triggers_failure() {
        let (client, _server) = connected_pair();
        let faulty = FaultyConnection::new(client);
        faulty.fail_after_sends(2);
        assert!(faulty.send(Envelope::request(1, vec![])).is_ok());
        assert!(faulty.send(Envelope::request(2, vec![])).is_ok());
        assert!(faulty.send(Envelope::request(3, vec![])).is_err());
        // Only the two frames that reached the wrapped connection count.
        assert_eq!(faulty.sent_count(), 2);
    }

    #[test]
    fn drop_every_swallows_frames_silently() {
        let (client, server) = connected_pair();
        let faulty = FaultyConnection::with_policy(
            client,
            ChaosPolicy { drop_every: 2, ..ChaosPolicy::default() },
        );
        for i in 0..4 {
            faulty.send(Envelope::request(i, vec![])).unwrap();
        }
        assert_eq!(faulty.dropped_count(), 2);
        assert_eq!(faulty.sent_count(), 2);
        // Only the odd-numbered (1st and 3rd) frames arrived.
        assert_eq!(server.recv().unwrap().id, 0);
        assert_eq!(server.recv().unwrap().id, 2);
    }

    #[test]
    fn duplicate_every_sends_frames_twice() {
        let (client, server) = connected_pair();
        let faulty = FaultyConnection::with_policy(
            client,
            ChaosPolicy { duplicate_every: 3, ..ChaosPolicy::default() },
        );
        for i in 0..3 {
            faulty.send(Envelope::request(i, vec![])).unwrap();
        }
        assert_eq!(faulty.duplicated_count(), 1);
        assert_eq!(faulty.sent_count(), 4);
        let ids: Vec<u64> = (0..4).map(|_| server.recv().unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 2, 2]);
    }

    #[test]
    fn stream_chunk_budget_kills_the_connection() {
        let (client, server) = connected_pair();
        let faulty = FaultyConnection::with_policy(
            client,
            ChaosPolicy { fail_after_stream_chunks: 1, ..ChaosPolicy::default() },
        );
        faulty.send(Envelope::stream(7, vec![0, 1, 2])).unwrap();
        assert_eq!(server.recv().unwrap().id, 7);
        let err = faulty.send(Envelope::stream(7, vec![1, 3, 4])).unwrap_err();
        assert!(matches!(err, GcfError::Disconnected(_)));
        assert!(!faulty.is_open());
        // The peer sees the close, not a hang.
        assert!(server.recv().is_err());
    }

    #[test]
    fn chaos_transport_scripts_faults_per_address() {
        let inner = InprocTransport::new();
        let chaos = ChaosTransport::new(Arc::new(inner.clone()));
        let l = chaos.listen("srv").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        let conn = chaos.connect("srv").unwrap();
        let _server = h.join().unwrap();
        conn.send(Envelope::request(1, vec![])).unwrap();

        // Kill the node: the live connection dies and reconnects are refused.
        chaos.kill("srv");
        assert!(conn.send(Envelope::request(2, vec![])).is_err());
        assert!(chaos.connect("srv").is_err());

        // Revive: new connections work again.
        let l = chaos.listen("srv2").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        chaos.revive("srv");
        // The inproc listener for "srv" is gone after kill/close of its
        // connection queue, so use a fresh address to prove revival works.
        let conn2 = chaos.connect("srv2").unwrap();
        let _s2 = h.join().unwrap();
        conn2.send(Envelope::request(3, vec![])).unwrap();
        assert_eq!(chaos.connections("srv2").len(), 1);
    }
}
