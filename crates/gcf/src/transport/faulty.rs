//! Fault-injection wrapper around any [`Connection`].
//!
//! Used by failure-injection tests to verify that the dOpenCL client driver,
//! daemon and device manager behave correctly when a peer disappears
//! mid-conversation (Section IV-C of the paper: devices must be released
//! when an application terminates abnormally or the client is disconnected).

use super::Connection;
use crate::error::{GcfError, Result};
use crate::message::Envelope;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wraps a connection and can be told to start failing on demand.
pub struct FaultyConnection {
    inner: Arc<dyn Connection>,
    failing: AtomicBool,
    /// Fail automatically after this many successful sends (0 = never).
    fail_after_sends: AtomicU64,
    sends: AtomicU64,
}

impl FaultyConnection {
    /// Wrap `inner`; the connection behaves normally until
    /// [`FaultyConnection::set_failing`] is called or the send budget is
    /// exhausted.
    pub fn new(inner: Arc<dyn Connection>) -> Arc<Self> {
        Arc::new(FaultyConnection {
            inner,
            failing: AtomicBool::new(false),
            fail_after_sends: AtomicU64::new(0),
            sends: AtomicU64::new(0),
        })
    }

    /// Start (or stop) failing every operation.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::Release);
    }

    /// Automatically switch to the failing state after `n` successful sends.
    pub fn fail_after_sends(&self, n: u64) {
        self.fail_after_sends.store(n, Ordering::Release);
    }

    /// Number of frames successfully sent through the wrapper.
    pub fn sent_count(&self) -> u64 {
        self.sends.load(Ordering::Acquire)
    }

    fn check(&self) -> Result<()> {
        if self.failing.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected("injected fault".to_string()));
        }
        Ok(())
    }
}

impl Connection for FaultyConnection {
    fn send(&self, env: Envelope) -> Result<()> {
        self.check()?;
        let budget = self.fail_after_sends.load(Ordering::Acquire);
        let sent = self.sends.fetch_add(1, Ordering::AcqRel) + 1;
        if budget != 0 && sent > budget {
            self.failing.store(true, Ordering::Release);
            return Err(GcfError::Disconnected("injected fault (send budget)".to_string()));
        }
        self.inner.send(env)
    }

    fn recv(&self) -> Result<Envelope> {
        self.check()?;
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope> {
        self.check()?;
        self.inner.recv_timeout(timeout)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }

    fn close(&self) {
        self.inner.close();
    }

    fn is_open(&self) -> bool {
        !self.failing.load(Ordering::Acquire) && self.inner.is_open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::inproc::InprocTransport;
    use crate::transport::Transport;

    fn connected_pair() -> (Arc<dyn Connection>, Arc<dyn Connection>) {
        let t = InprocTransport::new();
        let l = t.listen("srv").unwrap();
        let h = std::thread::spawn(move || l.accept().unwrap());
        let client = t.connect("srv").unwrap();
        let server = h.join().unwrap();
        (client, server)
    }

    #[test]
    fn passes_through_until_failing() {
        let (client, server) = connected_pair();
        let faulty = FaultyConnection::new(client);
        faulty.send(Envelope::request(1, vec![])).unwrap();
        assert_eq!(server.recv().unwrap().id, 1);
        faulty.set_failing(true);
        assert!(faulty.send(Envelope::request(2, vec![])).is_err());
        assert!(!faulty.is_open());
    }

    #[test]
    fn send_budget_triggers_failure() {
        let (client, _server) = connected_pair();
        let faulty = FaultyConnection::new(client);
        faulty.fail_after_sends(2);
        assert!(faulty.send(Envelope::request(1, vec![])).is_ok());
        assert!(faulty.send(Envelope::request(2, vec![])).is_ok());
        assert!(faulty.send(Envelope::request(3, vec![])).is_err());
        assert_eq!(faulty.sent_count(), 3);
    }
}
