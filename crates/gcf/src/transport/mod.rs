//! Transport abstraction: how frames travel between two processes.
//!
//! The dOpenCL protocol code (client driver and daemon) is written entirely
//! against the [`Transport`], [`Listener`] and [`Connection`] traits, so the
//! same code runs over the deterministic in-process transport used by tests
//! and benches and over real TCP sockets.

pub mod faulty;
pub mod inproc;
pub mod tcp;

use crate::error::Result;
use crate::message::Envelope;
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional, framed connection between two endpoints.
///
/// Implementations must be safe to share between threads: one thread may
/// block in [`Connection::recv`] while others call [`Connection::send`].
pub trait Connection: Send + Sync {
    /// Send one frame to the peer.
    fn send(&self, env: Envelope) -> Result<()>;

    /// Receive the next frame, blocking until one arrives or the connection
    /// is closed.
    fn recv(&self) -> Result<Envelope>;

    /// Receive with a timeout; returns `Err(GcfError::Timeout)` on expiry.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope>;

    /// A short description of the remote peer (address or name).
    fn peer(&self) -> String;

    /// Close the connection; subsequent operations fail with
    /// [`crate::GcfError::Disconnected`].
    fn close(&self);

    /// Whether the connection is still open.
    fn is_open(&self) -> bool;
}

/// A listening endpoint accepting incoming connections.
pub trait Listener: Send + Sync {
    /// Block until the next incoming connection arrives.
    fn accept(&self) -> Result<Arc<dyn Connection>>;

    /// The address this listener is bound to (resolvable by
    /// [`Transport::connect`]).
    fn local_addr(&self) -> String;

    /// Stop listening; a blocked [`Listener::accept`] returns an error.
    fn shutdown(&self);
}

/// Factory for listeners and outgoing connections.
pub trait Transport: Send + Sync {
    /// Bind a listener at `addr`.
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>>;

    /// Connect to the listener at `addr`.
    fn connect(&self, addr: &str) -> Result<Arc<dyn Connection>>;

    /// Name of the transport (for diagnostics).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::inproc::InprocTransport;
    use super::tcp::TcpTransport;
    use super::*;
    use crate::message::{Envelope, MessageKind};

    fn exercise_transport(transport: &dyn Transport, addr: &str) {
        let listener = transport.listen(addr).expect("listen");
        let bound = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().expect("accept");
            let req = conn.recv().expect("server recv");
            assert_eq!(req.kind, MessageKind::Request);
            conn.send(Envelope::response(req.id, req.payload.clone())).expect("server send");
            req.payload
        });

        let conn = transport.connect(&bound).expect("connect");
        assert!(conn.is_open());
        let payload = vec![1u8, 2, 3, 4, 5];
        conn.send(Envelope::request(9, payload.clone())).expect("send");
        let resp = conn.recv().expect("recv");
        assert_eq!(resp.kind, MessageKind::Response);
        assert_eq!(resp.id, 9);
        assert_eq!(resp.payload, payload);
        assert_eq!(server.join().unwrap(), payload);
    }

    #[test]
    fn inproc_round_trip() {
        let t = InprocTransport::new();
        exercise_transport(&t, "serverA");
    }

    #[test]
    fn tcp_round_trip() {
        let t = TcpTransport::new();
        exercise_transport(&t, "127.0.0.1:0");
    }

    #[test]
    fn inproc_connect_to_missing_address_fails() {
        let t = InprocTransport::new();
        assert!(t.connect("nowhere").is_err());
    }

    #[test]
    fn closed_connection_reports_not_open() {
        let t = InprocTransport::new();
        let listener = t.listen("x").unwrap();
        let handle = std::thread::spawn(move || listener.accept());
        let conn = t.connect("x").unwrap();
        let _server_conn = handle.join().unwrap().unwrap();
        conn.close();
        assert!(!conn.is_open());
        assert!(conn.send(Envelope::request(1, vec![])).is_err());
    }
}
