//! TCP transport: length-prefixed [`Envelope`] frames over `std::net`
//! sockets.
//!
//! This proves the dOpenCL protocol is a real wire protocol: the exact same
//! client-driver and daemon code that runs over the in-process transport can
//! talk across actual sockets (e.g. daemons on other machines).  Frames are
//! prefixed by a 4-byte little-endian length.

use super::{Connection, Listener, Transport};
use crate::error::{GcfError, Result};
use crate::message::Envelope;
use crate::wire::{Decode, Encode};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Maximum frame size accepted from the wire (1 GiB + header slack); guards
/// against corrupted length prefixes.
const MAX_FRAME: u32 = (1 << 30) + 4096;

/// A TCP-backed connection.
pub struct TcpConnection {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
    peer: String,
    open: AtomicBool,
}

impl TcpConnection {
    fn new(stream: TcpStream) -> Result<Self> {
        let peer =
            stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_string());
        let reader = stream.try_clone()?;
        Ok(TcpConnection {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
            peer,
            open: AtomicBool::new(true),
        })
    }

    fn read_frame(stream: &mut TcpStream) -> Result<Envelope> {
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Err(GcfError::Codec(format!("frame too large: {len} bytes")));
        }
        let mut frame = vec![0u8; len as usize];
        stream.read_exact(&mut frame)?;
        Envelope::from_bytes(&frame)
    }
}

impl Connection for TcpConnection {
    fn send(&self, env: Envelope) -> Result<()> {
        if !self.open.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected(self.peer.clone()));
        }
        let body = env.to_bytes();
        let mut writer = self.writer.lock();
        writer.write_all(&(body.len() as u32).to_le_bytes())?;
        writer.write_all(&body)?;
        writer.flush()?;
        Ok(())
    }

    fn recv(&self) -> Result<Envelope> {
        if !self.open.load(Ordering::Acquire) {
            return Err(GcfError::Disconnected(self.peer.clone()));
        }
        let mut reader = self.reader.lock();
        reader.set_read_timeout(None)?;
        Self::read_frame(&mut reader)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope> {
        let mut reader = self.reader.lock();
        reader.set_read_timeout(Some(timeout))?;
        let result = Self::read_frame(&mut reader);
        let _ = reader.set_read_timeout(None);
        result.map_err(|e| match e {
            GcfError::Io(msg)
                if msg.contains("timed out")
                    || msg.contains("would block")
                    || msg.contains("Resource temporarily unavailable") =>
            {
                GcfError::Timeout(format!("recv from {}", self.peer))
            }
            other => other,
        })
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn close(&self) {
        self.open.store(false, Ordering::Release);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }

    fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }
}

/// TCP listener wrapper.
pub struct TcpListenerWrapper {
    listener: TcpListener,
    addr: String,
}

impl Listener for TcpListenerWrapper {
    fn accept(&self) -> Result<std::sync::Arc<dyn Connection>> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(std::sync::Arc::new(TcpConnection::new(stream)?))
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn shutdown(&self) {
        // Dropping the TcpListener closes the socket; nothing else to do.
    }
}

/// Transport creating real TCP sockets.
#[derive(Clone, Copy, Default)]
pub struct TcpTransport;

impl TcpTransport {
    /// Create a TCP transport.
    pub fn new() -> Self {
        TcpTransport
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        let listener =
            TcpListener::bind(addr).map_err(|e| GcfError::Io(format!("bind {addr}: {e}")))?;
        let addr = listener.local_addr()?.to_string();
        Ok(Box::new(TcpListenerWrapper { listener, addr }))
    }

    fn connect(&self, addr: &str) -> Result<std::sync::Arc<dyn Connection>> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| GcfError::AddressNotFound(format!("{addr}: {e}")))?;
        stream.set_nodelay(true)?;
        Ok(std::sync::Arc::new(TcpConnection::new(stream)?))
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    #[test]
    fn large_frame_round_trip() {
        let t = TcpTransport::new();
        let listener = t.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let env = conn.recv().unwrap();
            conn.send(Envelope::response(env.id, env.payload)).unwrap();
        });
        let conn = t.connect(&addr).unwrap();
        let payload = vec![0xabu8; 4 * 1024 * 1024];
        conn.send(Envelope::request(1, payload.clone())).unwrap();
        let resp = conn.recv().unwrap();
        assert_eq!(resp.kind, MessageKind::Response);
        assert_eq!(resp.payload.len(), payload.len());
        server.join().unwrap();
    }

    #[test]
    fn recv_timeout_on_silent_peer() {
        let t = TcpTransport::new();
        let listener = t.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let _server = std::thread::spawn(move || {
            let _conn = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let conn = t.connect(&addr).unwrap();
        let err = conn.recv_timeout(Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, GcfError::Timeout(_)), "{err:?}");
    }

    #[test]
    fn connect_to_unbound_port_fails() {
        let t = TcpTransport::new();
        // Port 1 is essentially never listening.
        assert!(t.connect("127.0.0.1:1").is_err());
    }
}
